// Figure 3: weekly offered load vs achieved utilization under the baseline
// CPlant policy.

#include <algorithm>
#include <cmath>
#include <iostream>

#include "common/experiment_env.hpp"
#include "metrics/weekly.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Figure 3", "weekly offered load and actual utilization (baseline policy)",
      "bursty offered load oscillating well above and below 100%, with high-load weeks "
      "followed by low-load weeks; utilization tracks offered load, capped near 100%");

  const sim::ExperimentResult& baseline =
      bench::runner().run(paper_policy(PaperPolicy::Cplant24NomaxAll));
  const metrics::WeeklySeries series = metrics::weekly_series(baseline.simulation);

  util::TextTable table({"week", "offered_load", "utilization", "offered (40 cols = 200%)"});
  for (std::size_t w = 0; w < series.offered_load.size(); ++w) {
    const int bars =
        std::clamp(static_cast<int>(std::lround(series.offered_load[w] * 20.0)), 0, 40);
    table.begin_row()
        .add_int(static_cast<long long>(w))
        .add_percent(series.offered_load[w], 1)
        .add_percent(series.utilization[w], 1)
        .add(std::string(static_cast<std::size_t>(bars), '#'));
  }
  std::cout << table;

  double peak = 0.0;
  std::size_t overload_weeks = 0;
  for (std::size_t w = 0; w + 1 < series.offered_load.size(); ++w) {
    peak = std::max(peak, series.offered_load[w]);
    if (series.offered_load[w] > 1.0) ++overload_weeks;
  }
  std::cout << "\npeak offered load " << util::format_number(peak * 100.0, 1) << "%, "
            << overload_weeks << " weeks above 100% (paper: many weeks over 100%, peaks ~170%)\n";
  return 0;
}
