// Figure 18: average turnaround time by width — baseline vs the conservative
// family.

#include <iostream>

#include "common/experiment_env.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Figure 18", "average turnaround by width category (conservative family)",
      "wide jobs benefit from conservative reservations; the 72 h limit improves wide-job "
      "turnaround further via coarse preemption");

  const std::vector<PolicyConfig> policies = {
      paper_policy(PaperPolicy::Cplant24NomaxAll), paper_policy(PaperPolicy::ConsNomax),
      paper_policy(PaperPolicy::ConsdynNomax), paper_policy(PaperPolicy::ConsMax),
      paper_policy(PaperPolicy::ConsdynMax)};
  const auto reports = bench::run_policies(policies);
  std::cout << '\n' << metrics::turnaround_by_width_table(reports);
  return 0;
}
