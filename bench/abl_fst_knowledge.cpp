// Ablation: FST knowledge model. The hybrid FST can build its hypothetical
// schedule from user estimates (what the real scheduler knows; our default)
// or from perfect runtimes (the CONS_P convention). DESIGN.md documents why
// estimates reproduce the paper's ordering. A third reference joins them:
// the policy-knowledge FST of Sabin et al. ("no later arrivals" under the
// actual policy), computed with the forked simulation engine — one pass plus
// a per-arrival fork (sim/policy_fst.hpp) instead of the seed's O(n^2)
// truncated re-simulations, which made this column unaffordable at trace
// scale. The maximum-runtime variant has no per-original start under
// segmentation, so the policy rows cover the nomax policies only.

#include <iostream>

#include "common/experiment_env.hpp"
#include "metrics/fst.hpp"
#include "sim/policy_fst.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Ablation: FST knowledge (estimates vs perfect runtimes vs policy forks)",
      "FST fairness for three policies under both hybrid knowledge models, plus the "
      "policy-knowledge (no-later-arrivals) FST for the nomax policies",
      "perfect-runtime FSTs are strictly harder to meet (earlier), inflating miss counts "
      "for reservation-based schedulers; estimate-based FSTs compare each policy to the "
      "schedule it could actually have built; policy-knowledge FSTs re-run the policy "
      "itself without later arrivals and judge it against its own counterfactual");

  const std::vector<PolicyConfig> policies = {paper_policy(PaperPolicy::Cplant24NomaxAll),
                                              paper_policy(PaperPolicy::ConsNomax),
                                              paper_policy(PaperPolicy::ConsMax)};

  util::TextTable table({"knowledge", "policy", "percent_unfair", "unfair_any", "avg_miss_s"});
  for (const metrics::FstKnowledge knowledge :
       {metrics::FstKnowledge::Estimates, metrics::FstKnowledge::Perfect}) {
    for (const PolicyConfig& policy : policies) {
      const sim::ExperimentResult& run = bench::runner().run(policy);
      metrics::FstOptions options;
      options.knowledge = knowledge;
      const metrics::FstResult fst = metrics::hybrid_fairshare_fst(run.simulation, options);
      table.begin_row()
          .add(knowledge == metrics::FstKnowledge::Estimates ? "estimates" : "perfect")
          .add(policy.display_name())
          .add_percent(fst.percent_unfair)
          .add_percent(fst.percent_unfair_any)
          .add(fst.avg_miss_all, 0);
    }
  }

  // Policy-knowledge rows (forked engine): defined only without a
  // maximum-runtime limit — segment chaining has no per-original start.
  for (const PolicyConfig& policy : policies) {
    if (policy.max_runtime != kNoTime) continue;
    const sim::ExperimentResult& run = bench::runner().run(policy);
    sim::EngineConfig config = bench::runner().base_config();
    config.policy = policy;
    metrics::FstResult fst;
    fst.fair_start =
        sim::policy_no_later_arrivals_fst(bench::runner().workload(), config);
    metrics::aggregate_fst(run.simulation, metrics::FstOptions{}, fst);
    table.begin_row()
        .add("policy")
        .add(policy.display_name())
        .add_percent(fst.percent_unfair)
        .add_percent(fst.percent_unfair_any)
        .add(fst.avg_miss_all, 0);
  }
  std::cout << table;
  return 0;
}
