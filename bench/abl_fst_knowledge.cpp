// Ablation: FST knowledge model. The hybrid FST can build its hypothetical
// schedule from user estimates (what the real scheduler knows; our default)
// or from perfect runtimes (the CONS_P convention). DESIGN.md documents why
// estimates reproduce the paper's ordering.

#include <iostream>

#include "common/experiment_env.hpp"
#include "metrics/fst.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace psched;
  bench::init(argc, argv);

  bench::print_header(
      "Ablation: FST knowledge (estimates vs perfect runtimes)",
      "hybrid-FST fairness for three policies under both knowledge models",
      "perfect-runtime FSTs are strictly harder to meet (earlier), inflating miss counts "
      "for reservation-based schedulers; estimate-based FSTs compare each policy to the "
      "schedule it could actually have built");

  const std::vector<PolicyConfig> policies = {paper_policy(PaperPolicy::Cplant24NomaxAll),
                                              paper_policy(PaperPolicy::ConsNomax),
                                              paper_policy(PaperPolicy::ConsMax)};

  util::TextTable table({"knowledge", "policy", "percent_unfair", "unfair_any", "avg_miss_s"});
  for (const metrics::FstKnowledge knowledge :
       {metrics::FstKnowledge::Estimates, metrics::FstKnowledge::Perfect}) {
    for (const PolicyConfig& policy : policies) {
      const sim::ExperimentResult& run = bench::runner().run(policy);
      metrics::FstOptions options;
      options.knowledge = knowledge;
      const metrics::FstResult fst = metrics::hybrid_fairshare_fst(run.simulation, options);
      table.begin_row()
          .add(knowledge == metrics::FstKnowledge::Estimates ? "estimates" : "perfect")
          .add(policy.display_name())
          .add_percent(fst.percent_unfair)
          .add_percent(fst.percent_unfair_any)
          .add(fst.avg_miss_all, 0);
    }
  }
  std::cout << table;
  return 0;
}
