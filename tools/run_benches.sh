#!/usr/bin/env bash
# Build Release and refresh the committed benchmark baselines:
#   BENCH_profile.json     <- bench/perf_profile
#   BENCH_schedulers.json  <- bench/perf_schedulers + bench/perf_list_scheduler
#   BENCH_fst.json         <- bench/perf_fst
# Each file records per-case ns/op and the speedup of the optimized hot path
# over the preserved seed implementations (BM_Ref* cases), so every future PR
# has a perf trajectory to compare against.
#
# Env knobs:
#   PSCHED_BENCH_MIN_TIME   min seconds per benchmark case (default 0.2)
#   PSCHED_BENCH_BUILD_DIR  build directory (default build-bench)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${PSCHED_BENCH_BUILD_DIR:-build-bench}"
MIN_TIME="${PSCHED_BENCH_MIN_TIME:-0.2}"

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release -DPSCHED_BUILD_BENCH=ON >/dev/null
cmake --build "$BUILD" -j "$(nproc)" \
  --target perf_profile --target perf_list_scheduler \
  --target perf_schedulers --target perf_fst

run_bench() {
  echo "== $1 =="
  "$BUILD/$1" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$BUILD/$1.json" \
    --benchmark_out_format=json
}

run_bench perf_profile
run_bench perf_list_scheduler
run_bench perf_schedulers
run_bench perf_fst

python3 tools/summarize_benches.py BENCH_profile.json "$BUILD/perf_profile.json"
python3 tools/summarize_benches.py BENCH_schedulers.json \
  "$BUILD/perf_schedulers.json" "$BUILD/perf_list_scheduler.json"
python3 tools/summarize_benches.py BENCH_fst.json "$BUILD/perf_fst.json"
