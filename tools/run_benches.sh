#!/usr/bin/env bash
# Build Release and refresh the committed benchmark baselines:
#   BENCH_profile.json      <- bench/perf_profile
#   BENCH_schedulers.json   <- bench/perf_schedulers + bench/perf_list_scheduler
#   BENCH_fst.json          <- bench/perf_fst
#   BENCH_experiments.json  <- bench/perf_experiment (policy-sweep wall clock,
#                              serial baseline vs parallel run_all)
# Each file records per-case ns/op and the speedup of the optimized hot path
# over the preserved seed/serial implementations (BM_Ref* cases), so every
# future PR has a perf trajectory to compare against. The sweep speedup only
# shows parallel gain on multi-core hosts (pool size is recorded per case).
# tools/run_tsan.sh is the sibling data-race pass over the same concurrency.
#
# Deep-queue cases: perf_profile's BM_ProfilePack*/BM_ProfileEarliestFitDeep
# and perf_schedulers' BM_*DeepQueue families measure the gap-indexed
# profile on 10k+ reservation plans (for the *DeepQueue pairs, BM_RefSim* is
# the same scheduler with the gap index disabled, i.e. the linear-scan
# profile). The conservative deep sims run minutes-long single iterations on
# a slow host — budget ~10 minutes for a full refresh.
#
# Policy-FST pair (BENCH_fst.json): perf_fst's BM_PolicyFstForked (one pass
# over the trace + a fork per arrival) vs BM_RefPolicyFstNaive (the preserved
# seed path: one truncated re-simulation per job, O(n^2) simulated events) at
# 1k and 5k jobs. The naive 5k case is a single minutes-long iteration —
# budget another ~5-10 minutes; the pair is what documents the forked
# engine's speedup growing with trace length.
#
# Env knobs:
#   PSCHED_BENCH_MIN_TIME   min seconds per benchmark case (default 0.2)
#   PSCHED_BENCH_BUILD_DIR  build directory (default build-bench)
#   PSCHED_THREADS          pool size for the parallel sweep (default: cores)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${PSCHED_BENCH_BUILD_DIR:-build-bench}"
MIN_TIME="${PSCHED_BENCH_MIN_TIME:-0.2}"

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release -DPSCHED_BUILD_BENCH=ON >/dev/null
cmake --build "$BUILD" -j "$(nproc)" \
  --target perf_profile --target perf_list_scheduler \
  --target perf_schedulers --target perf_fst --target perf_experiment

run_bench() {
  echo "== $1 =="
  "$BUILD/$1" \
    --benchmark_min_time="$MIN_TIME" \
    --benchmark_out="$BUILD/$1.json" \
    --benchmark_out_format=json
}

run_bench perf_profile
run_bench perf_list_scheduler
run_bench perf_schedulers
run_bench perf_fst
run_bench perf_experiment

python3 tools/summarize_benches.py BENCH_profile.json "$BUILD/perf_profile.json"
python3 tools/summarize_benches.py BENCH_schedulers.json \
  "$BUILD/perf_schedulers.json" "$BUILD/perf_list_scheduler.json"
python3 tools/summarize_benches.py BENCH_fst.json "$BUILD/perf_fst.json"
python3 tools/summarize_benches.py BENCH_experiments.json "$BUILD/perf_experiment.json"
