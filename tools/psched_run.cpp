// psched_run: run scheduling policies on a trace and print the full report.
//
//   psched_run [options]
//     --swf FILE          read an SWF V2 trace (default: synthetic Ross)
//     --scale S           synthetic trace count scale (default 1.0)
//     --seed N            synthetic trace seed (default 20021201)
//     --system-size N     override machine size
//     --policy NAME       policy to run (repeatable); NAME is one of the
//                         paper policies (cplant24.nomax.all, cons.72max,
//                         ...), fcfs, easy, noguarantee, depthN, or
//                         cons.fcfs. Default: the paper's nine policies.
//     --decay F           fairshare decay factor per day (default 0.9)
//     --tolerance SECS    unfairness tolerance (default 86400)
//     --jobs N            concurrent policy simulations (default: thread-pool
//                         size; 1 = serial; results identical either way)
//     --csv               emit CSV instead of aligned tables
//     --by-width          also print the per-width breakdown tables
//     --by-user N         also print the N heaviest users' treatment
//     --write-swf FILE    dump the (possibly synthetic) trace as SWF and exit
//     --trace FILE        arm the observability layer and export a Perfetto /
//                         Chrome trace-event JSON to FILE on exit (equivalent
//                         to PSCHED_TRACE=FILE; the report bytes are
//                         unchanged — see docs/observability.md)

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <vector>

#include "metrics/breakdowns.hpp"
#include "metrics/report.hpp"
#include "obs/obs.hpp"
#include "sim/experiment.hpp"
#include "workload/generator.hpp"
#include "workload/swf.hpp"

namespace {

using namespace psched;

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "psched_run: " << message << "\n(run with --help for usage)\n";
  std::exit(2);
}

void print_usage() {
  std::cout <<
      "psched_run — fairness-aware parallel job scheduling simulator\n"
      "  --swf FILE | --scale S --seed N   trace source (default synthetic Ross)\n"
      "  --system-size N                   machine size override\n"
      "  --policy NAME                     repeatable; default: all nine paper policies\n"
      "  --decay F --tolerance SECS        fairness knobs\n"
      "  --jobs N                          concurrent policy simulations (default: pool\n"
      "                                    size, env PSCHED_THREADS; 1 = serial; the\n"
      "                                    report is byte-identical for every N)\n"
      "  --csv --by-width --by-user N      output options\n"
      "  --write-swf FILE                  dump trace and exit\n"
      "  --trace FILE                      export a Perfetto trace JSON on exit\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string swf_path;
  std::string write_swf_path;
  double scale = 1.0;
  std::uint64_t seed = 20021201ULL;
  NodeCount system_size = 0;
  double decay = 0.9;
  Time tolerance = hours(24);
  bool csv = false;
  bool by_width = false;
  int by_user = 0;
  std::size_t jobs = 0;  // 0 = global pool size
  std::vector<PolicyConfig> policies;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) fail("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--swf") {
      swf_path = next();
    } else if (arg == "--write-swf") {
      write_swf_path = next();
    } else if (arg == "--scale") {
      scale = std::strtod(next(), nullptr);
    } else if (arg == "--seed") {
      seed = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--system-size") {
      system_size = static_cast<NodeCount>(std::atoi(next()));
    } else if (arg == "--policy") {
      const std::string name = next();
      const auto policy = policy_from_name(name);
      if (!policy) fail("unknown policy '" + name + "'");
      policies.push_back(*policy);
    } else if (arg == "--decay") {
      decay = std::strtod(next(), nullptr);
    } else if (arg == "--tolerance") {
      tolerance = std::atoll(next());
    } else if (arg == "--jobs") {
      const int parsed = std::atoi(next());
      if (parsed < 1) fail("--jobs must be >= 1");
      jobs = static_cast<std::size_t>(parsed);
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--by-width") {
      by_width = true;
    } else if (arg == "--by-user") {
      by_user = std::atoi(next());
    } else if (arg == "--trace") {
      obs::arm();
      obs::set_exit_trace_path(next());
    } else {
      fail("unknown option '" + arg + "'");
    }
  }

  // Trace.
  Workload trace;
  bool swf_source = false;
  if (!swf_path.empty()) {
    // Streaming ingestion: same bytes as the eager reader (counters, sizing
    // and workload all pinned identical by tests), but peak memory stays
    // O(chunk) over the ingest scan — archive traces don't double-buffer.
    const workload::SwfReadResult read =
        workload::read_swf_file_streaming(swf_path, system_size);
    trace = read.workload;
    swf_source = true;
    std::cout << "# read " << trace.jobs.size() << " jobs from " << swf_path << " (of "
              << read.total_records << " records: skipped " << read.skipped_records
              << " invalid, filtered " << read.filtered_records << " non-completed)\n"
              << "# machine: " << read.describe_sizing() << '\n';
  } else {
    workload::GeneratorConfig generator;
    generator.seed = seed;
    generator.count_scale = scale;
    if (system_size > 0) generator.system_size = system_size;
    if (scale < 1.0)
      generator.span = std::max<Time>(weeks(4), static_cast<Time>(
          static_cast<double>(workload::kRossTraceSpan) * scale));
    trace = workload::generate_ross_workload(generator);
    std::cout << "# generated " << trace.jobs.size() << " synthetic jobs (seed " << seed
              << ", scale " << scale << ")\n";
  }
  if (!swf_source) std::cout << "# machine: " << trace.system_size << " nodes\n";

  if (!write_swf_path.empty()) {
    workload::write_swf_file(write_swf_path, trace);
    std::cout << "# wrote " << write_swf_path << '\n';
    return 0;
  }

  if (policies.empty()) policies = all_paper_policies();

  sim::EngineConfig base;
  base.fairshare_decay = decay;
  metrics::FstOptions fst_options;
  fst_options.tolerance = tolerance;
  sim::ExperimentRunner runner(trace, base, fst_options);

  std::cout << "# simulating " << policies.size() << " policies";
  for (const PolicyConfig& policy : policies) std::cout << ' ' << policy.display_name();
  std::cout << "...\n" << std::flush;
  const std::vector<const sim::ExperimentResult*> results = runner.run_all(policies, jobs);

  std::vector<metrics::PolicyReport> reports;
  for (const sim::ExperimentResult* run : results) reports.push_back(run->report);

  const util::TextTable fairness = metrics::fairness_summary_table(reports);
  const util::TextTable performance = metrics::performance_summary_table(reports);
  std::cout << "\n== fairness ==\n" << (csv ? fairness.csv() : fairness.str())
            << "\n== performance ==\n" << (csv ? performance.csv() : performance.str());

  if (by_width) {
    const util::TextTable miss = metrics::miss_by_width_table(reports);
    const util::TextTable tat = metrics::turnaround_by_width_table(reports);
    std::cout << "\n== avg miss by width ==\n" << (csv ? miss.csv() : miss.str())
              << "\n== avg turnaround by width ==\n" << (csv ? tat.csv() : tat.str());
  }

  if (by_user > 0 && !policies.empty()) {
    const sim::ExperimentResult& run = runner.run(policies.front());
    const auto users = metrics::user_breakdown(run.simulation, &run.report.fairness, tolerance);
    util::TextTable table({"user", "jobs", "proc_hours", "avg_wait_s", "avg_miss_s", "unfair"});
    for (std::size_t u = 0; u < std::min<std::size_t>(users.size(),
                                                      static_cast<std::size_t>(by_user));
         ++u) {
      const metrics::UserSummary& s = users[u];
      table.begin_row()
          .add_int(s.user)
          .add_int(static_cast<long long>(s.jobs))
          .add(s.proc_seconds / 3600.0, 0)
          .add(s.avg_wait, 0)
          .add(s.avg_miss, 0)
          .add_percent(s.unfair_fraction);
    }
    std::cout << "\n== heaviest users under " << policies.front().display_name() << " ==\n"
              << (csv ? table.csv() : table.str());
  }
  return 0;
}
