#!/usr/bin/env python3
"""Condense google-benchmark JSON output into the committed BENCH_*.json
baselines: per-case ns/op plus speedup ratios for every optimized/reference
benchmark pair (BM_Foo vs BM_RefFoo).

Usage: summarize_benches.py OUT.json IN1.json [IN2.json ...]
"""

import json
import os
import re
import sys

_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Reference -> optimized name prefixes for pairs that don't follow the plain
# BM_Foo / BM_RefFoo convention (argument suffixes like "/5000" are kept).
_PAIR_OVERRIDES = {
    "BM_RefPolicyFstNaive": "BM_PolicyFstForked",
    "BM_RefForkOverheadRecordCopy": "BM_ForkOverheadShared",
}


def load_cases(path):
    with open(path) as f:
        raw = json.load(f)
    cases = {}
    for b in raw.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        scale = _UNIT_NS[b.get("time_unit", "ns")]
        entry = {"ns_per_op": round(b["real_time"] * scale, 2)}
        if "items_per_second" in b:
            entry["items_per_second"] = round(b["items_per_second"], 1)
        # Context counters (e.g. perf_experiment records the pool size the
        # parallel sweep actually ran with; perf_fst records the fork-batch
        # cap and the peak batch/fork memory the bounded draining admitted).
        for counter in ("jobs", "pool_threads", "fork_batch", "peak_batch_bytes",
                        "peak_fork_bytes"):
            if counter in b:
                entry[counter] = round(b[counter], 1)
        cases[b["name"]] = entry
    return cases


def main():
    if len(sys.argv) < 3:
        sys.exit(__doc__)
    out_path, in_paths = sys.argv[1], sys.argv[2:]
    cases = {}
    for path in in_paths:
        cases.update(load_cases(path))

    speedups = {}
    for name, entry in cases.items():
        if not name.startswith("BM_Ref"):
            continue
        # Run-modifier suffixes (e.g. "/iterations:1" on single-shot deep
        # cases) describe how the reference was run, not which case it is —
        # ignore them when hunting for the optimized twin.
        base = re.sub(r"/iterations:\d+", "", name)
        optimized = "BM_" + base[len("BM_Ref"):]
        # Some pairs carry descriptive suffixes instead of the bare BM_Foo /
        # BM_RefFoo convention (e.g. the policy-FST forked/naive pair, where
        # "Forked" vs "Naive" names the algorithm, not just the tier).
        for ref_prefix, opt_prefix in _PAIR_OVERRIDES.items():
            if base.startswith(ref_prefix):
                optimized = opt_prefix + base[len(ref_prefix):]
                break
        if optimized in cases and cases[optimized]["ns_per_op"] > 0:
            speedups[optimized] = round(entry["ns_per_op"] / cases[optimized]["ns_per_op"], 2)

    summary = {
        "generated_by": "tools/run_benches.sh",
        "note": "ns_per_op is wall time per benchmark iteration; "
                "speedup_vs_reference = reference ns_per_op / optimized ns_per_op "
                "(reference = preserved seed implementation, see core/reference_profile.hpp)",
        "cases": dict(sorted(cases.items())),
        "speedup_vs_reference": dict(sorted(speedups.items())),
    }
    # Atomic + durable, mirroring util::atomic_write_file: a crash mid-write
    # must never leave a torn baseline for the diff tooling to chew on.
    tmp_path = f"{out_path}.tmp.{os.getpid()}"
    try:
        with open(tmp_path, "w") as f:
            json.dump(summary, f, indent=2)
            f.write("\n")
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp_path, out_path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise
    print(f"wrote {out_path} ({len(cases)} cases, {len(speedups)} speedup pairs)")


if __name__ == "__main__":
    main()
