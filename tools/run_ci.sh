#!/usr/bin/env bash
# The whole CI gate in one script, runnable locally or from the workflow.
#
#   tools/run_ci.sh            tier-1 gate (default):
#     1. configure + build (-Werror -Wshadow are on by default)
#     2. psched-lint contract check over src/, tools/, bench/
#     3. ctest (the correctness contract; includes the lint fixture tests)
#     4. compile-gate the opt-in experiment/example binaries under -Werror
#     5. a one-spec campaign smoke run (SWF replay of the committed sample
#        trace), checked for a non-empty results store
#     6. a kill-and-resume smoke: SIGKILL the campaign mid-cell (a
#        PSCHED_FAULTS-injected hang), then --resume and require the results
#        store to be byte-identical to the uninterrupted run in step 5
#     7. the chaos harness: psched_chaos re-runs the smoke campaign once per
#        registered fault point (hard-errno, transient and kill+resume legs)
#        and asserts every failure lands in the retried / degraded /
#        fail-loud trichotomy with byte-identical recovered stores
#     8. an archive-scale replay smoke: a ~50k-job synthetic trace exported
#        to SWF and replayed through a campaign with the forked
#        (policy-knowledge) FST under a wall budget, with the eager- and
#        streaming-reader stores diffed byte-for-byte
#
#   tools/run_ci.sh sanitize   the sanitizer matrix (a separate workflow job
#     so tier-1 latency is unchanged): the FULL ctest suite under ASan and
#     UBSan via tools/run_sanitize.sh. TSan stays available as
#     tools/run_sanitize.sh thread (or the historical tools/run_tsan.sh).
#
#   tools/run_ci.sh all        both of the above.
#
# Env knobs:
#   PSCHED_CI_BUILD_DIR  tier-1 build directory (default build-ci)
#   PSCHED_CI_JOBS       parallel build/test jobs (default nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${PSCHED_CI_BUILD_DIR:-build-ci}"
JOBS="${PSCHED_CI_JOBS:-$(nproc)}"
STEP="${1:-tier1}"

run_sanitize_matrix() {
  echo "== sanitize: ASan full suite =="
  ./tools/run_sanitize.sh address
  echo "== sanitize: UBSan full suite =="
  ./tools/run_sanitize.sh undefined
}

run_tier1() {
  echo "== tier-1: configure + build (-Werror) =="
  cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD" -j "$JOBS"

  echo "== psched-lint: contract check =="
  "$BUILD"/psched_lint --root .

  echo "== tier-1: ctest =="
  ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

  echo "== experiments/examples compile gate =="
  ./tools/check_examples.sh

  echo "== campaign smoke run =="
  SMOKE_OUT="$BUILD/campaign-smoke"
  rm -rf "$SMOKE_OUT"
  "$BUILD"/psched_campaign examples/campaigns/swf_replay.spec --out "$SMOKE_OUT" --jobs 1
  test -s "$SMOKE_OUT/cells.csv" && test -s "$SMOKE_OUT/summary.json"
  # Two policies on the sample trace -> header + 2 rows.
  test "$(wc -l < "$SMOKE_OUT/cells.csv")" -eq 3

  echo "== observability smoke: traced run, byte-identical store =="
  # The obs contract: arming --trace/--stats changes NO result byte. Re-run
  # the smoke campaign traced, diff cells.csv bytewise against the untraced
  # run, diff summary.json after stripping the "breakdown" block only an
  # armed run emits, and validate the exported Perfetto JSON (span hierarchy
  # present, counters nonzero) with the stdlib-only summarizer.
  TRACE_OUT="$BUILD/campaign-trace-smoke"
  rm -rf "$TRACE_OUT"
  "$BUILD"/psched_campaign examples/campaigns/swf_replay.spec --out "$TRACE_OUT" \
    --jobs 1 --trace "$TRACE_OUT/trace.json" --stats
  cmp "$SMOKE_OUT/cells.csv" "$TRACE_OUT/cells.csv"
  grep -q '^  "breakdown": \[$' "$TRACE_OUT/summary.json"  # armed run emits it
  sed '/^  "breakdown": \[$/,/^  \],$/d' "$TRACE_OUT/summary.json" \
    | cmp - "$SMOKE_OUT/summary.json"
  python3 tools/summarize_trace.py "$TRACE_OUT/trace.json" \
    --require-spans campaign,workload-build,group,sweep,cell,store-write \
    --require-counters

  echo "== campaign kill-and-resume smoke =="
  # Hang the second cell, SIGKILL the process once the first cell's journal
  # record is durable, then resume without the fault: the journal must replay
  # and the final store must be byte-identical to the uninterrupted run above.
  RESUME_OUT="$BUILD/campaign-resume-smoke"
  rm -rf "$RESUME_OUT"
  PSCHED_FAULTS="campaign.cell:hang:after=2" \
    "$BUILD"/psched_campaign examples/campaigns/swf_replay.spec \
    --out "$RESUME_OUT" --jobs 1 --keep-going >/dev/null 2>&1 &
  CAMPAIGN_PID=$!
  for _ in $(seq 1 300); do
    [ "$(wc -l < "$RESUME_OUT/journal.jsonl" 2>/dev/null || echo 0)" -ge 2 ] && break
    sleep 0.1
  done
  test "$(wc -l < "$RESUME_OUT/journal.jsonl")" -ge 2  # cell 0 made it to disk
  kill -9 "$CAMPAIGN_PID"
  wait "$CAMPAIGN_PID" 2>/dev/null || true
  "$BUILD"/psched_campaign examples/campaigns/swf_replay.spec \
    --out "$RESUME_OUT" --jobs 1 --resume
  cmp "$SMOKE_OUT/cells.csv" "$RESUME_OUT/cells.csv"
  cmp "$SMOKE_OUT/summary.json" "$RESUME_OUT/summary.json"

  echo "== chaos harness: trichotomy over every fault point =="
  # Every registered point, three legs each (hard errno, transient EINTR,
  # hang+SIGKILL+resume), each child capped at 60s so a regressed hang cannot
  # stall the gate. The harness exits nonzero if any point has no plan, never
  # fires, or lands outside the trichotomy.
  CHAOS_OUT="$BUILD/chaos-smoke"
  rm -rf "$CHAOS_OUT"
  "$BUILD"/psched_chaos --campaign "$BUILD"/psched_campaign \
    --spec examples/campaigns/swf_replay.spec --out "$CHAOS_OUT" --timeout 60

  echo "== archive-scale replay smoke (~50k jobs, forked FST) =="
  # Generate a ~50k-job synthetic trace, export it to SWF, and replay it
  # through a campaign that selects the policy-knowledge (forked-engine) FST.
  # scale 3.8 condenses ~3.8x the Ross trace into the same span, so the spec
  # stretches arrivals back (rescale_load 0.26) to keep the queue realistic.
  # --wall-budget is the perf guard: blowing it exits 4 (interrupted store)
  # and fails the gate. The uncontended run takes ~15s per reader; 180s
  # leaves ~10x headroom for slow CI hosts.
  ARCHIVE_OUT="$BUILD/archive-smoke"
  rm -rf "$ARCHIVE_OUT"
  mkdir -p "$ARCHIVE_OUT"
  "$BUILD"/psched_run --scale 3.8 --seed 42 --write-swf "$ARCHIVE_OUT/archive.swf" \
    >/dev/null
  test "$(grep -cv '^[;#]' "$ARCHIVE_OUT/archive.swf")" -ge 50000  # archive-scale, not a toy
  cat > "$ARCHIVE_OUT/archive.spec" <<SPEC
[campaign]
name = archive_smoke
metrics = policy_percent_unfair, policy_avg_miss_all, percent_unfair, avg_wait, utilization

[workload]
source = swf
file = archive.swf
rescale_load = 0.26

[policies]
names = cplant24.nomax.all
SPEC
  # Same spec through both ingestion paths; the stores must match bytewise.
  "$BUILD"/psched_campaign "$ARCHIVE_OUT/archive.spec" --out "$ARCHIVE_OUT/streaming" \
    --swf-reader streaming --jobs 1 --wall-budget 180 >/dev/null
  "$BUILD"/psched_campaign "$ARCHIVE_OUT/archive.spec" --out "$ARCHIVE_OUT/eager" \
    --swf-reader eager --jobs 1 --wall-budget 180 >/dev/null
  cmp "$ARCHIVE_OUT/streaming/cells.csv" "$ARCHIVE_OUT/eager/cells.csv"
  cmp "$ARCHIVE_OUT/streaming/summary.json" "$ARCHIVE_OUT/eager/summary.json"
  # The forked FST actually ran: its metric columns are in the store.
  grep -q "policy_percent_unfair" "$ARCHIVE_OUT/streaming/cells.csv"
}

case "$STEP" in
  tier1)
    run_tier1
    ;;
  sanitize)
    run_sanitize_matrix
    ;;
  all)
    run_tier1
    run_sanitize_matrix
    ;;
  *)
    echo "usage: $0 [tier1|sanitize|all]" >&2
    exit 2
    ;;
esac

echo "CI green ($STEP)"
