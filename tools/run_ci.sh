#!/usr/bin/env bash
# The whole CI gate in one script, runnable locally or from the workflow:
#   1. tier-1: configure + build + ctest (the correctness contract)
#   2. compile-gate the opt-in experiment/example binaries
#   3. a one-spec campaign smoke run (SWF replay of the committed sample
#      trace), checked for a non-empty results store
#
# Env knobs:
#   PSCHED_CI_BUILD_DIR  tier-1 build directory (default build-ci)
#   PSCHED_CI_JOBS       parallel build/test jobs (default nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${PSCHED_CI_BUILD_DIR:-build-ci}"
JOBS="${PSCHED_CI_JOBS:-$(nproc)}"

echo "== tier-1: configure + build =="
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j "$JOBS"

echo "== tier-1: ctest =="
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo "== experiments/examples compile gate =="
./tools/check_examples.sh

echo "== campaign smoke run =="
SMOKE_OUT="$BUILD/campaign-smoke"
"$BUILD"/psched_campaign examples/campaigns/swf_replay.spec --out "$SMOKE_OUT" --jobs 1
test -s "$SMOKE_OUT/cells.csv" && test -s "$SMOKE_OUT/summary.json"
# Two policies on the sample trace -> header + 2 rows.
test "$(wc -l < "$SMOKE_OUT/cells.csv")" -eq 3

echo "CI green"
