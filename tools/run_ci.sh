#!/usr/bin/env bash
# The whole CI gate in one script, runnable locally or from the workflow:
#   1. tier-1: configure + build + ctest (the correctness contract)
#   2. compile-gate the opt-in experiment/example binaries
#   3. a one-spec campaign smoke run (SWF replay of the committed sample
#      trace), checked for a non-empty results store
#   4. a kill-and-resume smoke: SIGKILL the campaign mid-cell (fault-injected
#      hang), then --resume and require the results store to be byte-identical
#      to the uninterrupted run in step 3
#
# Env knobs:
#   PSCHED_CI_BUILD_DIR  tier-1 build directory (default build-ci)
#   PSCHED_CI_JOBS       parallel build/test jobs (default nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${PSCHED_CI_BUILD_DIR:-build-ci}"
JOBS="${PSCHED_CI_JOBS:-$(nproc)}"

echo "== tier-1: configure + build =="
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j "$JOBS"

echo "== tier-1: ctest =="
ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"

echo "== experiments/examples compile gate =="
./tools/check_examples.sh

echo "== campaign smoke run =="
SMOKE_OUT="$BUILD/campaign-smoke"
rm -rf "$SMOKE_OUT"
"$BUILD"/psched_campaign examples/campaigns/swf_replay.spec --out "$SMOKE_OUT" --jobs 1
test -s "$SMOKE_OUT/cells.csv" && test -s "$SMOKE_OUT/summary.json"
# Two policies on the sample trace -> header + 2 rows.
test "$(wc -l < "$SMOKE_OUT/cells.csv")" -eq 3

echo "== campaign kill-and-resume smoke =="
# Hang the second cell, SIGKILL the process once the first cell's journal
# record is durable, then resume without the fault: the journal must replay
# and the final store must be byte-identical to the uninterrupted run above.
RESUME_OUT="$BUILD/campaign-resume-smoke"
rm -rf "$RESUME_OUT"
PSCHED_FAULT_INJECT=cell:1:hang \
  "$BUILD"/psched_campaign examples/campaigns/swf_replay.spec \
  --out "$RESUME_OUT" --jobs 1 --keep-going >/dev/null 2>&1 &
CAMPAIGN_PID=$!
for _ in $(seq 1 300); do
  [ "$(wc -l < "$RESUME_OUT/journal.jsonl" 2>/dev/null || echo 0)" -ge 2 ] && break
  sleep 0.1
done
test "$(wc -l < "$RESUME_OUT/journal.jsonl")" -ge 2  # cell 0 made it to disk
kill -9 "$CAMPAIGN_PID"
wait "$CAMPAIGN_PID" 2>/dev/null || true
"$BUILD"/psched_campaign examples/campaigns/swf_replay.spec \
  --out "$RESUME_OUT" --jobs 1 --resume
cmp "$SMOKE_OUT/cells.csv" "$RESUME_OUT/cells.csv"
cmp "$SMOKE_OUT/summary.json" "$RESUME_OUT/summary.json"

echo "CI green"
