#!/usr/bin/env bash
# Compile-gate for the opt-in binaries: the paper-figure experiments
# (bench/exp_*, bench/abl_*) and the examples/ programs only build under
# -DPSCHED_BUILD_EXPERIMENTS=ON, so nothing in the default tier-1 build
# notices when an API change breaks them. This script configures a separate
# build tree with experiments enabled and builds everything; run it (or let
# the verify flow run it) whenever a public header changes.
#
# Env knobs:
#   PSCHED_EXAMPLES_BUILD_DIR  build directory (default build-exp)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${PSCHED_EXAMPLES_BUILD_DIR:-build-exp}"

# -Werror is the default, but pin it explicitly: the opt-in exp_*/abl_*
# binaries are exactly the ones that rot behind warnings nobody sees.
cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release -DPSCHED_WERROR=ON \
  -DPSCHED_BUILD_EXPERIMENTS=ON -DPSCHED_BUILD_BENCH=OFF >/dev/null
cmake --build "$BUILD" -j "$(nproc)"
echo "examples + experiments compile clean under -Werror ($BUILD)"
