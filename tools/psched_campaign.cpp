// psched_campaign: run a declarative scenario campaign end to end.
//
//   psched_campaign SPEC [options]
//     --out DIR    write DIR/cells.csv (one row per simulated cell) and
//                  DIR/summary.json (per-policy mean + bootstrap CI)
//     --jobs N     concurrent simulations per policy sweep (default: global
//                  pool size, env PSCHED_THREADS; 1 = serial; every output
//                  is byte-identical for any N)
//     --dry-run    parse the spec, print the expanded cell plan, and exit
//     --csv        print stdout tables as CSV instead of aligned text
//
// A single-seed campaign additionally prints the standard fairness and
// performance tables, so a spec mirroring a figure binary (same workload,
// policies and seed — see examples/campaigns/fig14_all_policies.spec)
// reproduces that binary's table bytes exactly.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "metrics/report.hpp"
#include "scenario/campaign.hpp"
#include "util/table.hpp"

namespace {

using namespace psched;

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "psched_campaign: " << message << "\n(run with --help for usage)\n";
  std::exit(2);
}

void print_usage() {
  std::cout <<
      "psched_campaign — declarative scenario campaigns (spec format: docs/campaign_specs.md)\n"
      "  psched_campaign SPEC [--out DIR] [--jobs N] [--dry-run] [--csv]\n"
      "  --out DIR    write DIR/cells.csv and DIR/summary.json\n"
      "  --jobs N     concurrent simulations per sweep (1 = serial; output identical)\n"
      "  --dry-run    print the expanded cell plan without simulating\n"
      "  --csv        CSV tables on stdout\n";
}

/// "3.1e-02 [2.8e-02, 3.4e-02]"-free: plain fixed numbers, mean first.
std::string ci_cell(const util::BootstrapCi& ci, std::size_t replicates) {
  std::string out = util::format_number(ci.mean, 4);
  if (replicates > 1)
    out += " [" + util::format_number(ci.lo, 4) + ", " + util::format_number(ci.hi, 4) + "]";
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_dir;
  std::size_t jobs = 0;
  bool dry_run = false;
  bool csv = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) fail("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--jobs") {
      const int parsed = std::atoi(next());
      if (parsed < 1) fail("--jobs must be >= 1");
      jobs = static_cast<std::size_t>(parsed);
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (!arg.empty() && arg[0] == '-') {
      fail("unknown option '" + arg + "'");
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      fail("more than one spec file given");
    }
  }
  if (spec_path.empty()) fail("no spec file given");

  scenario::ScenarioSpec spec;
  try {
    spec = scenario::parse_spec_file(spec_path);
  } catch (const std::exception& error) {
    std::cerr << "psched_campaign: " << error.what() << '\n';
    return 2;
  }

  const scenario::CampaignPlan plan = scenario::expand_campaign(spec);
  std::cout << "# campaign " << spec.name << ": " << plan.expanded_cells << " expanded -> "
            << plan.cells.size() << " unique cells, " << plan.seeds.size() << " seed"
            << (plan.seeds.size() == 1 ? "" : "s") << ", " << spec.metrics.size()
            << " metrics\n";
  if (dry_run) {
    util::TextTable table({"cell", "seed", "decay", "policy"});
    for (const scenario::CampaignCell& cell : plan.cells)
      table.begin_row()
          .add_int(static_cast<long long>(cell.index))
          .add_int(static_cast<long long>(cell.seed))
          .add(cell.decay, 3)
          .add(cell.policy.display_name());
    std::cout << (csv ? table.csv() : table.str());
    return 0;
  }

  scenario::CampaignOptions options;
  options.jobs = jobs;
  scenario::CampaignResult result;
  try {
    result = scenario::run_campaign(spec, options);
  } catch (const std::exception& error) {
    std::cerr << "psched_campaign: " << error.what() << '\n';
    return 1;
  }

  for (const auto& trace : result.traces) {
    std::cout << "# seed " << trace.seed << ": " << trace.jobs << " jobs, " << trace.system_size
              << " nodes\n";
  }
  if (result.swf_info) {
    std::cout << "# swf " << spec.workload.swf_file << ": " << result.swf_info->total_records
              << " records, skipped " << result.swf_info->skipped_records << " invalid, filtered "
              << result.swf_info->filtered_records << " non-completed\n"
              << "# machine: " << result.swf_info->describe_sizing() << '\n';
  }

  // Figure-binary parity: a single-seed campaign is exactly one policy sweep,
  // so print the same summary tables the exp_* binaries print.
  if (plan.seeds.size() == 1) {
    const util::TextTable fairness = metrics::fairness_summary_table(result.reports);
    const util::TextTable performance = metrics::performance_summary_table(result.reports);
    std::cout << "\n== fairness ==\n" << (csv ? fairness.csv() : fairness.str())
              << "\n== performance ==\n" << (csv ? performance.csv() : performance.str());
  }

  std::vector<std::string> header = {"policy", "decay", "n"};
  for (const std::string& metric : spec.metrics) header.push_back(metric);
  util::TextTable aggregates(header);
  for (const scenario::AggregateResult& aggregate : result.aggregates) {
    aggregates.begin_row()
        .add(aggregate.policy)
        .add(aggregate.decay, 3)
        .add_int(static_cast<long long>(aggregate.replicates));
    for (const util::BootstrapCi& ci : aggregate.metrics)
      aggregates.add(ci_cell(ci, aggregate.replicates));
  }
  std::cout << "\n== campaign summary (mean";
  if (plan.seeds.size() > 1)
    std::cout << " [" << util::format_number(spec.bootstrap_confidence * 100.0, 0)
              << "% bootstrap CI] over " << plan.seeds.size() << " seeds";
  std::cout << ") ==\n" << (csv ? aggregates.csv() : aggregates.str());

  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) fail("cannot create --out directory " + out_dir + ": " + ec.message());
    const std::string cells_path = out_dir + "/cells.csv";
    const std::string summary_path = out_dir + "/summary.json";
    std::ofstream cells(cells_path);
    if (!cells) fail("cannot open " + cells_path);
    scenario::write_cells_csv(result, cells);
    std::ofstream summary(summary_path);
    if (!summary) fail("cannot open " + summary_path);
    scenario::write_summary_json(result, summary);
    std::cout << "\n# wrote " << cells_path << " and " << summary_path << '\n';
  }
  return 0;
}
