// psched_campaign: run a declarative scenario campaign end to end.
//
//   psched_campaign SPEC [options]
//     --out DIR        write DIR/cells.csv (one row per cell), DIR/summary.json
//                      (per-policy mean + bootstrap CI) and DIR/journal.jsonl
//                      (append-only crash journal, one fsynced record per
//                      finished cell)
//     --jobs N         concurrent simulations per policy sweep (default:
//                      global pool size, env PSCHED_THREADS; 1 = serial; every
//                      output is byte-identical for any N)
//     --resume         replay DIR/journal.jsonl: skip cells already journaled
//                      ok, re-run failed/timed-out/cancelled ones; the final
//                      results store is byte-identical to an uninterrupted run
//     --cell-timeout S cancel any single cell after S seconds (timeout row)
//     --wall-budget S  stop the whole campaign after S seconds (interrupted)
//     --keep-going     keep scheduling cells after a failed cell (default:
//                      halt; already-running cells still finish either way)
//     --swf-reader R   SWF ingestion path for swf-sourced specs: "streaming"
//                      (default; O(head + chunk) peak memory, archive-scale)
//                      or "eager" (whole trace materialized). The results
//                      store is byte-identical either way — the flag trades
//                      memory, never output
//     --dry-run        parse the spec, print the expanded cell plan, and exit
//     --csv            print stdout tables as CSV instead of aligned text
//     --trace FILE     arm the observability layer and export a Chrome
//                      trace-event / Perfetto JSON trace to FILE (equivalent
//                      to PSCHED_TRACE=FILE; see docs/observability.md).
//                      Result stores stay byte-identical to an untraced run
//     --stats          arm the observability layer and print the per-cell
//                      breakdown table plus the nonzero subsystem counters
//
// SIGINT/SIGTERM request a cooperative stop: in-flight cells cancel at their
// next event boundary, the journal is already durable, and a partial results
// store marked "interrupted" is written. A second signal hard-exits (130).
//
// Exit codes: 0 every cell ok; 2 usage/spec/journal errors (nothing ran);
// 3 campaign completed but some cells failed, timed out or were skipped;
// 4 interrupted (signal or wall budget) — resume with --resume.
//
// A single-seed campaign additionally prints the standard fairness and
// performance tables, so a spec mirroring a figure binary (same workload,
// policies and seed — see examples/campaigns/fig14_all_policies.spec)
// reproduces that binary's table bytes exactly.

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "metrics/report.hpp"
#include "obs/obs.hpp"
#include "scenario/campaign.hpp"
#include "util/atomic_file.hpp"
#include "util/table.hpp"

namespace {

using namespace psched;

/// Campaign-wide stop, tripped by SIGINT/SIGTERM or --wall-budget. A global
/// so the signal handler can reach it; request_stop is a single relaxed
/// atomic store and therefore async-signal-safe.
util::StopSource g_stop;
std::atomic<int> g_signals{0};

extern "C" void on_stop_signal(int) {
  if (g_signals.fetch_add(1, std::memory_order_relaxed) == 0)
    g_stop.request_stop();  // first signal: cooperative stop + flushed store
  else
    _exit(130);  // second signal: the user really means it
}

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "psched_campaign: " << message << "\n(run with --help for usage)\n";
  std::exit(2);
}

void print_usage() {
  std::cout <<
      "psched_campaign — declarative scenario campaigns (spec format: docs/campaign_specs.md)\n"
      "  psched_campaign SPEC [--out DIR] [--jobs N] [--resume] [--cell-timeout S]\n"
      "                  [--wall-budget S] [--keep-going] [--dry-run] [--csv]\n"
      "  --out DIR        write DIR/cells.csv, DIR/summary.json, DIR/journal.jsonl\n"
      "  --jobs N         concurrent simulations per sweep (1 = serial; output identical)\n"
      "  --resume         skip cells already journaled ok (requires --out)\n"
      "  --cell-timeout S cancel a cell after S seconds -> timeout status row\n"
      "  --wall-budget S  stop the campaign after S seconds -> interrupted store\n"
      "  --keep-going     keep scheduling cells after a failure (default: halt)\n"
      "  --swf-reader R   streaming (default) or eager SWF ingestion; identical stores\n"
      "  --dry-run        print the expanded cell plan without simulating\n"
      "  --csv            CSV tables on stdout\n"
      "  --trace FILE     export a Perfetto/Chrome trace-event JSON to FILE\n"
      "  --stats          print the per-cell breakdown and subsystem counters\n"
      "exit codes: 0 all ok, 2 usage/spec error, 3 failed/skipped cells, 4 interrupted\n";
}

/// "3.1e-02 [2.8e-02, 3.4e-02]"-free: plain fixed numbers, mean first.
std::string ci_cell(const util::BootstrapCi& ci, std::size_t replicates) {
  std::string out = util::format_number(ci.mean, 4);
  if (replicates > 1)
    out += " [" + util::format_number(ci.lo, 4) + ", " + util::format_number(ci.hi, 4) + "]";
  return out;
}

double parse_seconds(const std::string& arg, const char* text) {
  try {
    const double value = std::stod(text);
    if (value <= 0.0) throw std::invalid_argument(text);
    return value;
  } catch (const std::exception&) {
    fail(arg + " wants a positive number of seconds, got '" + std::string(text) + "'");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string out_dir;
  scenario::CampaignOptions options;
  options.keep_going = false;
  double wall_budget = 0.0;
  bool dry_run = false;
  bool csv = false;
  bool stats = false;
  std::string trace_path;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) fail("missing value for " + arg);
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (arg == "--out") {
      out_dir = next();
    } else if (arg == "--jobs") {
      const int parsed = std::atoi(next());
      if (parsed < 1) fail("--jobs must be >= 1");
      options.jobs = static_cast<std::size_t>(parsed);
    } else if (arg == "--resume") {
      options.resume = true;
    } else if (arg == "--cell-timeout") {
      options.cell_timeout = parse_seconds(arg, next());
    } else if (arg == "--wall-budget") {
      wall_budget = parse_seconds(arg, next());
    } else if (arg == "--keep-going") {
      options.keep_going = true;
    } else if (arg == "--swf-reader") {
      const std::string reader = next();
      if (reader == "streaming")
        options.swf_reader = scenario::SwfReaderKind::Streaming;
      else if (reader == "eager")
        options.swf_reader = scenario::SwfReaderKind::Eager;
      else
        fail("--swf-reader wants 'streaming' or 'eager', got '" + reader + "'");
    } else if (arg == "--dry-run") {
      dry_run = true;
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--trace") {
      trace_path = next();
      obs::arm();  // armed before any simulation so the whole campaign is traced
    } else if (arg == "--stats") {
      stats = true;
      obs::arm();
    } else if (!arg.empty() && arg[0] == '-') {
      fail("unknown option '" + arg + "'");
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      fail("more than one spec file given");
    }
  }
  if (spec_path.empty()) fail("no spec file given");
  if (options.resume && out_dir.empty()) fail("--resume needs --out (the journal lives there)");

  scenario::ScenarioSpec spec;
  try {
    spec = scenario::parse_spec_file(spec_path);
  } catch (const std::exception& error) {
    std::cerr << "psched_campaign: " << error.what() << '\n';
    return 2;
  }

  const scenario::CampaignPlan plan = scenario::expand_campaign(spec);
  std::cout << "# campaign " << spec.name << ": " << plan.expanded_cells << " expanded -> "
            << plan.cells.size() << " unique cells, " << plan.seeds.size() << " seed"
            << (plan.seeds.size() == 1 ? "" : "s") << ", " << spec.metrics.size()
            << " metrics\n";
  if (dry_run) {
    util::TextTable table({"cell", "seed", "decay", "policy"});
    for (const scenario::CampaignCell& cell : plan.cells)
      table.begin_row()
          .add_int(static_cast<long long>(cell.index))
          .add_int(static_cast<long long>(cell.seed))
          .add(cell.decay, 3)
          .add(cell.policy.display_name());
    std::cout << (csv ? table.csv() : table.str());
    return 0;
  }

  if (!out_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(out_dir, ec);
    if (ec) fail("cannot create --out directory " + out_dir + ": " + ec.message());
    options.journal_path = out_dir + "/journal.jsonl";
  }
  if (wall_budget > 0.0) g_stop.set_deadline_after(wall_budget);
  options.stop = g_stop.token();
  std::signal(SIGINT, on_stop_signal);
  std::signal(SIGTERM, on_stop_signal);

  scenario::CampaignResult result;
  try {
    result = scenario::run_campaign(spec, options);
  } catch (const std::exception& error) {
    // Spec/workload/journal problems surface here before any cell ran;
    // per-cell failures never throw (they become status rows).
    std::cerr << "psched_campaign: " << error.what() << '\n';
    return 2;
  }

  for (const auto& trace : result.traces) {
    std::cout << "# seed " << trace.seed << ": " << trace.jobs << " jobs, " << trace.system_size
              << " nodes\n";
  }
  if (result.swf_info) {
    std::cout << "# swf " << spec.workload.swf_file << ": " << result.swf_info->total_records
              << " records, skipped " << result.swf_info->skipped_records << " invalid, filtered "
              << result.swf_info->filtered_records << " non-completed\n"
              << "# machine: " << result.swf_info->describe_sizing() << '\n';
  }
  if (options.resume)
    std::cout << "# resume: replayed " << result.replayed_records << " journal records, restored "
              << result.restored_cells << " cells, simulated " << result.simulated_cells << '\n';

  // Figure-binary parity: a single-seed, fully-simulated campaign is exactly
  // one policy sweep, so print the same summary tables the exp_* binaries
  // print. Restored or non-ok cells have no PolicyReport to tabulate.
  if (plan.seeds.size() == 1 && result.reports_complete) {
    const util::TextTable fairness = metrics::fairness_summary_table(result.reports);
    const util::TextTable performance = metrics::performance_summary_table(result.reports);
    std::cout << "\n== fairness ==\n" << (csv ? fairness.csv() : fairness.str())
              << "\n== performance ==\n" << (csv ? performance.csv() : performance.str());
  }

  std::vector<std::string> header = {"policy", "decay", "n"};
  for (const std::string& metric : spec.metrics) header.push_back(metric);
  util::TextTable aggregates(header);
  for (const scenario::AggregateResult& aggregate : result.aggregates) {
    aggregates.begin_row()
        .add(aggregate.policy)
        .add(aggregate.decay, 3)
        .add_int(static_cast<long long>(aggregate.replicates));
    for (const util::BootstrapCi& ci : aggregate.metrics)
      aggregates.add(ci_cell(ci, aggregate.replicates));
  }
  std::cout << "\n== campaign summary (mean";
  if (plan.seeds.size() > 1)
    std::cout << " [" << util::format_number(spec.bootstrap_confidence * 100.0, 0)
              << "% bootstrap CI] over " << plan.seeds.size() << " seeds";
  std::cout << ") ==\n" << (csv ? aggregates.csv() : aggregates.str());

  const std::size_t failed = result.count(scenario::CellStatus::Failed);
  const std::size_t timeout = result.count(scenario::CellStatus::Timeout);
  const std::size_t cancelled = result.count(scenario::CellStatus::Cancelled);
  const std::size_t pending = result.count(scenario::CellStatus::Pending);
  if (failed + timeout + cancelled + pending > 0) {
    std::cout << "\n# cells: " << result.count(scenario::CellStatus::Ok) << " ok";
    if (failed) std::cout << ", " << failed << " failed";
    if (timeout) std::cout << ", " << timeout << " timeout";
    if (cancelled) std::cout << ", " << cancelled << " cancelled";
    if (pending) std::cout << ", " << pending << " never started";
    std::cout << '\n';
    for (const scenario::CellResult& cell : result.cells)
      if (!cell.error.empty())
        std::cout << "#   cell " << cell.cell.index << " ("
                  << cell.cell.policy.display_name() << "): "
                  << scenario::cell_status_name(cell.status) << ": " << cell.error << '\n';
  }
  if (result.interrupted)
    std::cout << "# campaign interrupted ("
              << (g_signals.load(std::memory_order_relaxed) > 0 ? "signal" : "wall budget")
              << ") — journal is durable, rerun with --resume to finish\n";
  if (result.journal_degraded)
    std::cout << "# journal degraded (" << result.journal_error
              << ") — results are complete, but un-journaled cells would be "
                 "re-simulated by --resume\n";

  if (stats && result.breakdown_enabled) {
    util::TextTable breakdown({"cell", "policy", "status", "provenance", "wall_s", "events",
                               "sched", "fst_forks", "fst_drained", "peak_batch_b"});
    for (const scenario::CellResult& cell : result.cells) {
      const auto& b = cell.breakdown;
      breakdown.begin_row()
          .add_int(static_cast<long long>(cell.cell.index))
          .add(cell.cell.policy.display_name())
          .add(scenario::cell_status_name(cell.status))
          .add(cell.restored ? "journal" : !b.collected ? "none" : b.cache_hit ? "cache"
                                                                               : "computed")
          .add(b.wall_seconds, 3)
          .add_int(static_cast<long long>(b.events_delivered))
          .add_int(static_cast<long long>(b.scheduler_invocations))
          .add_int(static_cast<long long>(b.fst_forks))
          .add_int(static_cast<long long>(b.fst_drained))
          .add_int(static_cast<long long>(b.fst_peak_batch_bytes));
    }
    std::cout << "\n== per-cell breakdown ==\n" << (csv ? breakdown.csv() : breakdown.str());

    util::TextTable counters({"counter", "class", "value"});
    for (const obs::CounterValue& counter : obs::counters_snapshot())
      if (counter.value != 0)
        counters.begin_row()
            .add(counter.name)
            .add(counter.deterministic ? "deterministic" : "scheduling")
            .add_int(static_cast<long long>(counter.value));
    std::cout << "\n== subsystem counters (nonzero) ==\n"
              << (csv ? counters.csv() : counters.str());
  }

  if (!out_dir.empty()) {
    const std::string cells_path = out_dir + "/cells.csv";
    const std::string summary_path = out_dir + "/summary.json";
    try {
      // Atomic + durable: readers never observe a torn store, even if this
      // very write races a crash. An interrupted run still writes a partial
      // store (summary.json says "interrupted") on top of the journal.
      std::ostringstream cells;
      scenario::write_cells_csv(result, cells);
      util::atomic_write_file(cells_path, cells.str());
      std::ostringstream summary;
      scenario::write_summary_json(result, summary);
      util::atomic_write_file(summary_path, summary.str());
    } catch (const std::exception& error) {
      std::cerr << "psched_campaign: " << error.what() << '\n';
      return 2;
    }
    std::cout << "\n# wrote " << cells_path << " and " << summary_path << '\n';
  }

  // Exported last so the trace covers the store writes too. Best-effort: a
  // failed export reports on stderr but never fails a finished campaign.
  if (!trace_path.empty() && obs::write_trace_file(trace_path))
    std::cout << "# wrote trace " << trace_path << '\n';

  if (result.interrupted) return 4;
  if (failed + timeout + cancelled + pending > 0) return 3;
  return 0;
}
