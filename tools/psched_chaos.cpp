// psched_chaos — machine-check the failure trichotomy over every registered
// fault point.
//
//   psched_chaos --campaign BIN --spec SPEC --out DIR [--point NAME]
//                [--skip-kill] [--timeout S] [--list]
//
// For each point in util::fault::catalog() the harness re-runs a small
// campaign (BIN on SPEC, both normally taken from the CI smoke) with
// PSCHED_FAULTS arming that one point, and asserts the run lands in exactly
// one of the three sanctioned outcomes:
//
//   retried-to-success   transient errno (EINTR): exit 0 and a results store
//                        byte-identical to the fault-free baseline
//   degraded-with-status journal trouble: exit 0, cells.csv identical to the
//                        baseline, summary.json says "journal": "degraded"
//   failed-loudly        permanent errno: nonzero exit and a stderr message
//                        carrying the failing path and the errno text
//
// plus, per point, a kill+resume leg: arm `<point>:hang`, wait for the
// fired-count report the registry flushes the moment a hang starts, SIGKILL
// the child, rerun (with --resume when a journal survived), and require the
// final cells.csv / summary.json to be byte-identical to the baseline.
//
// The PSCHED_FAULTS_REPORT fired counts double as proof that every leg
// actually exercised its point — a run that "passes" without its fault firing
// is a harness bug, and fails here. A catalog point with no plan entry fails
// the harness too, so new fault points cannot dodge chaos coverage.

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/fault.hpp"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

struct Options {
  std::string campaign;  // path to the psched_campaign binary
  std::string spec;      // campaign spec to re-run per leg
  std::string out;       // scratch root for per-leg directories
  std::string only;      // --point filter (empty = all)
  bool skip_kill = false;
  bool list = false;
  double timeout = 120.0;  // per-child wall budget, seconds
};

enum class Expect {
  kSuccess,    // exit 0, stores byte-identical to the baseline
  kDegraded,   // exit 0, cells.csv identical, summary says journal degraded
  kLoud,       // nonzero exit, stderr carries path + errno text
  kStatusRow,  // exit 3, the injected cell is a `failed` row in the store
};

/// One catalog point's chaos plan. Suffixes are appended to "<point>:".
struct PointPlan {
  const char* point;
  const char* hard;       // permanent-failure leg spec suffix
  Expect expect;          // outcome class of the hard leg
  const char* errno_hint; // stderr/summary substring proving the errno text
  const char* path_hint;  // stderr substring proving the path ("@OUT@" = leg dir)
  const char* transient;  // retried-to-success leg ("" = none, e.g. close)
  const char* kill;       // hang spec suffix for the kill+resume leg
  int jobs = 1;           // threadpool.submit needs a second lane to exist
  bool resume_context = false;  // legs run --resume on top of a clean journal
};

// clang-format off
const PointPlan kPlans[] = {
    {"atomic_write.open",         "errno=EACCES",         Expect::kLoud,      "Permission denied",       "@OUT@",         "errno=EINTR", "hang",         1, false},
    {"atomic_write.write",        "errno=ENOSPC",         Expect::kLoud,      "No space left",           "@OUT@",         "errno=EINTR", "hang",         1, false},
    {"atomic_write.fsync",        "errno=EIO",            Expect::kLoud,      "Input/output error",      "@OUT@",         "errno=EINTR", "hang",         1, false},
    {"atomic_write.close",        "errno=EIO",            Expect::kLoud,      "Input/output error",      "@OUT@",         "",            "hang",         1, false},
    {"atomic_write.rename",       "errno=EIO",            Expect::kLoud,      "Input/output error",      "@OUT@",         "errno=EINTR", "hang",         1, false},
    {"atomic_write.parent_fsync", "errno=EIO",            Expect::kLoud,      "durability unconfirmed",  "@OUT@",         "errno=EINTR", "hang",         1, false},
    {"journal.open",              "errno=EACCES",         Expect::kDegraded,  "",                        "",              "errno=EINTR", "hang",         1, false},
    {"journal.append.write",      "errno=ENOSPC:after=2", Expect::kDegraded,  "",                        "",              "errno=EINTR", "hang:after=2", 1, false},
    {"journal.append.fsync",      "errno=EIO:after=2",    Expect::kDegraded,  "",                        "",              "errno=EINTR", "hang:after=2", 1, false},
    {"journal.replay.read",       "errno=EIO",            Expect::kLoud,      "Input/output error",      "journal.jsonl", "errno=EINTR", "hang",         1, true},
    {"swf.open",                  "errno=EACCES",         Expect::kLoud,      "Permission denied",       ".swf",          "errno=EINTR", "hang",         1, false},
    {"swf.read.line",             "errno=EIO:after=3",    Expect::kLoud,      "read failed",             ".swf",          "errno=EINTR", "hang:after=3", 1, false},
    {"threadpool.submit",         "errno=EIO",            Expect::kSuccess,   "",                        "",              "errno=EINTR", "hang",         2, false},
    {"campaign.cell",             "throw:after=1",        Expect::kStatusRow, "injected fault",          "",              "",            "hang:after=2", 1, false},
};
// clang-format on

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

/// Parse a PSCHED_FAULTS_REPORT file ("name hits fired" per line).
std::map<std::string, std::uint64_t> fired_counts(const std::string& path) {
  std::map<std::string, std::uint64_t> fired;
  std::ifstream in(path);
  std::string name;
  std::uint64_t hits = 0;
  std::uint64_t count = 0;
  while (in >> name >> hits >> count) fired[name] = count;
  return fired;
}

struct ChildRun {
  int exit_code = -1;     // -1: killed / timed out / never exited cleanly
  bool killed = false;    // we SIGKILLed it (kill legs)
  std::string stderr_text;
  std::map<std::string, std::uint64_t> fired;

  std::uint64_t fired_at(const std::string& point) const {
    const auto it = fired.find(point);
    return it == fired.end() ? 0 : it->second;
  }
};

/// Fork+exec one psched_campaign run with the given PSCHED_FAULTS arming.
/// `wait_for_hang`: poll for the registry's hang-flush report, SIGKILL, reap.
ChildRun run_child(const Options& options, const std::string& dir, const std::string& faults,
                   bool resume, int jobs, bool wait_for_hang) {
  const std::string report = dir + "/fault_report.txt";
  const std::string stderr_path = dir + "/stderr.txt";
  std::remove(report.c_str());

  const pid_t pid = ::fork();
  if (pid < 0) {
    std::cerr << "psched_chaos: fork: " << std::strerror(errno) << '\n';
    std::exit(2);
  }
  if (pid == 0) {
    if (faults.empty())
      ::unsetenv("PSCHED_FAULTS");
    else
      ::setenv("PSCHED_FAULTS", faults.c_str(), 1);
    ::setenv("PSCHED_FAULTS_REPORT", report.c_str(), 1);
    // psched-lint: allow(raw-file-write): child-side capture of the campaign's
    // streams so the parent can assert on stderr, not a results store
    const int err_fd = ::open(stderr_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (err_fd >= 0) ::dup2(err_fd, 2);
    // psched-lint: allow(raw-file-write): /dev/null sink for the child's stdout
    const int null_fd = ::open("/dev/null", O_WRONLY);
    if (null_fd >= 0) ::dup2(null_fd, 1);
    std::vector<std::string> args = {options.campaign, options.spec, "--out", dir,
                                     "--jobs", std::to_string(jobs)};
    if (resume) args.emplace_back("--resume");
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& arg : args) argv.push_back(arg.data());
    argv.push_back(nullptr);
    ::execv(options.campaign.c_str(), argv.data());
    std::_Exit(127);
  }

  ChildRun run;
  const auto deadline = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                           std::chrono::duration<double>(options.timeout));
  bool exited = false;
  int status = 0;
  while (Clock::now() < deadline) {
    const pid_t reaped = ::waitpid(pid, &status, WNOHANG);
    if (reaped == pid) {
      exited = true;
      break;
    }
    if (wait_for_hang && fs::exists(report)) break;  // the hang flushed its report
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  if (!exited) {
    // Kill leg reaching its hang, or a run blowing the wall budget: either
    // way the child dies here; the caller tells the cases apart via `killed`
    // plus the fired counts.
    ::kill(pid, SIGKILL);
    ::waitpid(pid, &status, 0);
    run.killed = true;
  } else if (WIFEXITED(status)) {
    run.exit_code = WEXITSTATUS(status);
  }
  run.stderr_text = slurp(stderr_path);
  run.fired = fired_counts(report);
  return run;
}

/// Fresh scratch dir for one leg.
std::string leg_dir(const Options& options, const std::string& point, const char* leg) {
  const std::string dir = options.out + "/" + point + "." + leg;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

struct Baseline {
  std::string cells;
  std::string summary;
};

bool stores_match(const std::string& dir, const Baseline& baseline, std::string& why) {
  if (slurp(dir + "/cells.csv") != baseline.cells) {
    why = "cells.csv differs from the baseline";
    return false;
  }
  if (slurp(dir + "/summary.json") != baseline.summary) {
    why = "summary.json differs from the baseline";
    return false;
  }
  return true;
}

int g_failures = 0;

void report_leg(const std::string& point, const char* leg, bool ok, const std::string& detail) {
  std::cout << (ok ? "  ok   " : "  FAIL ") << point << " [" << leg << "]"
            << (detail.empty() ? "" : ": " + detail) << '\n';
  if (!ok) ++g_failures;
}

/// Run the clean pass a --resume leg builds on (journal in place, exit 0).
bool prime_resume_context(const Options& options, const std::string& dir) {
  const ChildRun clean = run_child(options, dir, "", /*resume=*/false, 1, false);
  return clean.exit_code == 0;
}

void run_hard_leg(const Options& options, const PointPlan& plan, const Baseline& baseline) {
  const std::string dir = leg_dir(options, plan.point, "hard");
  if (plan.resume_context && !prime_resume_context(options, dir)) {
    report_leg(plan.point, "hard", false, "priming clean run failed");
    return;
  }
  const std::string faults = std::string(plan.point) + ":" + plan.hard;
  const ChildRun run =
      run_child(options, dir, faults, plan.resume_context, plan.jobs, false);

  std::string why;
  bool ok = false;
  if (run.fired_at(plan.point) == 0) {
    why = "fault never fired";
  } else {
    switch (plan.expect) {
      case Expect::kSuccess:
        ok = run.exit_code == 0 && stores_match(dir, baseline, why);
        if (!ok && why.empty()) why = "exit " + std::to_string(run.exit_code);
        break;
      case Expect::kDegraded: {
        const std::string summary = slurp(dir + "/summary.json");
        ok = run.exit_code == 0 && slurp(dir + "/cells.csv") == baseline.cells &&
             contains(summary, "\"journal\": \"degraded\"");
        if (!ok)
          why = "exit " + std::to_string(run.exit_code) +
                (contains(summary, "degraded") ? "" : ", no degraded marker");
        break;
      }
      case Expect::kLoud: {
        std::string path_hint = plan.path_hint;
        if (path_hint == "@OUT@") path_hint = dir;
        ok = run.exit_code != 0 && run.exit_code != -1 &&
             contains(run.stderr_text, plan.errno_hint) && contains(run.stderr_text, path_hint);
        if (!ok)
          why = "exit " + std::to_string(run.exit_code) + ", stderr: " +
                (run.stderr_text.empty() ? "<empty>" : run.stderr_text.substr(0, 200));
        // Satellite contract: a parent-fsync failure happens after the
        // rename, so the renamed store must be in place and complete.
        if (ok && std::string(plan.point) == "atomic_write.parent_fsync" &&
            slurp(dir + "/cells.csv") != baseline.cells) {
          ok = false;
          why = "renamed cells.csv missing or different after parent-fsync failure";
        }
        break;
      }
      case Expect::kStatusRow: {
        const std::string cells = slurp(dir + "/cells.csv");
        ok = run.exit_code == 3 && contains(cells, ",failed") &&
             contains(slurp(dir + "/summary.json"), plan.errno_hint);
        if (!ok) why = "exit " + std::to_string(run.exit_code) + ", no failed status row";
        break;
      }
    }
  }
  report_leg(plan.point, "hard", ok, why);
}

void run_transient_leg(const Options& options, const PointPlan& plan, const Baseline& baseline) {
  const std::string dir = leg_dir(options, plan.point, "transient");
  if (plan.resume_context && !prime_resume_context(options, dir)) {
    report_leg(plan.point, "transient", false, "priming clean run failed");
    return;
  }
  const std::string faults = std::string(plan.point) + ":" + plan.transient;
  const ChildRun run =
      run_child(options, dir, faults, plan.resume_context, plan.jobs, false);
  std::string why;
  bool ok = false;
  if (run.fired_at(plan.point) == 0)
    why = "fault never fired";
  else if (run.exit_code != 0)
    why = "exit " + std::to_string(run.exit_code) + ", stderr: " +
          (run.stderr_text.empty() ? "<empty>" : run.stderr_text.substr(0, 200));
  else
    ok = stores_match(dir, baseline, why);
  report_leg(plan.point, "transient", ok, why);
}

void run_kill_leg(const Options& options, const PointPlan& plan, const Baseline& baseline) {
  const std::string dir = leg_dir(options, plan.point, "kill");
  if (plan.resume_context && !prime_resume_context(options, dir)) {
    report_leg(plan.point, "kill", false, "priming clean run failed");
    return;
  }
  const std::string faults = std::string(plan.point) + ":" + plan.kill;
  const ChildRun hung =
      run_child(options, dir, faults, plan.resume_context, plan.jobs, /*wait_for_hang=*/true);
  if (!hung.killed || hung.fired_at(plan.point) == 0) {
    report_leg(plan.point, "kill", false,
               hung.killed ? "hang never fired" : "child exited before hanging, exit " +
                                                      std::to_string(hung.exit_code));
    return;
  }
  // Recovery: resume when a journal survived the kill, otherwise start over.
  // Either way the rebuilt store must match the baseline byte for byte.
  const bool resume = fs::exists(dir + "/journal.jsonl");
  const ChildRun redo = run_child(options, dir, "", resume, 1, false);
  std::string why;
  bool ok = false;
  if (redo.exit_code != 0)
    why = std::string(resume ? "--resume" : "fresh rerun") + " exited " +
          std::to_string(redo.exit_code) + ", stderr: " +
          (redo.stderr_text.empty() ? "<empty>" : redo.stderr_text.substr(0, 200));
  else
    ok = stores_match(dir, baseline, why);
  report_leg(plan.point, resume ? "kill+resume" : "kill+rerun", ok, why);
}

int usage(int code) {
  std::cout << "usage: psched_chaos --campaign BIN --spec SPEC --out DIR\n"
               "                    [--point NAME] [--skip-kill] [--timeout S] [--list]\n"
               "  --campaign BIN  psched_campaign binary to drive\n"
               "  --spec SPEC     campaign spec each leg re-runs\n"
               "  --out DIR       scratch root (wiped per leg subdirectory)\n"
               "  --point NAME    only this fault point\n"
               "  --skip-kill     skip the kill+resume legs\n"
               "  --timeout S     per-child wall budget (default 120)\n"
               "  --list          print the fault-point catalog and exit\n";
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&]() -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "psched_chaos: " << arg << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--campaign") options.campaign = value();
    else if (arg == "--spec") options.spec = value();
    else if (arg == "--out") options.out = value();
    else if (arg == "--point") options.only = value();
    else if (arg == "--skip-kill") options.skip_kill = true;
    else if (arg == "--timeout") options.timeout = std::stod(value());
    else if (arg == "--list") options.list = true;
    else if (arg == "--help" || arg == "-h") return usage(0);
    else {
      std::cerr << "psched_chaos: unknown argument " << arg << '\n';
      return usage(2);
    }
  }

  if (options.list) {
    for (const std::string& point : psched::util::fault::catalog()) std::cout << point << '\n';
    return 0;
  }
  if (options.campaign.empty() || options.spec.empty() || options.out.empty()) return usage(2);

  // Every catalog point must have a chaos plan — adding a fault point without
  // chaos coverage is an error by construction.
  std::set<std::string> planned;
  for (const PointPlan& plan : kPlans) planned.insert(plan.point);
  bool covered = true;
  for (const std::string& point : psched::util::fault::catalog()) {
    if (planned.count(point) == 0) {
      std::cerr << "psched_chaos: catalog point '" << point << "' has no chaos plan\n";
      covered = false;
    }
  }
  if (!covered) return 2;

  fs::create_directories(options.out);

  // Fault-free baseline: the byte-exact store every success/degraded/kill leg
  // is compared against.
  const std::string baseline_dir = leg_dir(options, "baseline", "run");
  const ChildRun base = run_child(options, baseline_dir, "", false, 1, false);
  if (base.exit_code != 0) {
    std::cerr << "psched_chaos: baseline run failed (exit " << base.exit_code << ")\n"
              << base.stderr_text;
    return 2;
  }
  Baseline baseline;
  baseline.cells = slurp(baseline_dir + "/cells.csv");
  baseline.summary = slurp(baseline_dir + "/summary.json");
  if (baseline.cells.empty() || baseline.summary.empty()) {
    std::cerr << "psched_chaos: baseline produced an empty store\n";
    return 2;
  }

  std::cout << "psched_chaos: " << psched::util::fault::catalog().size()
            << " fault points, baseline ok\n";
  for (const PointPlan& plan : kPlans) {
    if (!options.only.empty() && options.only != plan.point) continue;
    run_hard_leg(options, plan, baseline);
    if (plan.transient[0] != '\0') run_transient_leg(options, plan, baseline);
    if (!options.skip_kill && plan.kill[0] != '\0') run_kill_leg(options, plan, baseline);
  }

  if (g_failures > 0) {
    std::cout << "psched_chaos: " << g_failures << " leg(s) FAILED\n";
    return 1;
  }
  std::cout << "psched_chaos: all legs passed\n";
  return 0;
}
