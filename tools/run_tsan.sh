#!/usr/bin/env bash
# Historical entry point for the ThreadSanitizer gate — now a thin wrapper
# over tools/run_sanitize.sh so all three sanitizer builds share one
# build-dir/flag path. Runs the FULL ctest suite under TSan (the old script
# only ran the concurrency-filtered subset).
#
# Env knobs (kept for compatibility):
#   PSCHED_TSAN_BUILD_DIR  build directory (default build-tsan)
#   PSCHED_THREADS         pool size under test (default 4)
set -euo pipefail
cd "$(dirname "$0")/.."

PSCHED_SAN_BUILD_DIR="${PSCHED_TSAN_BUILD_DIR:-build-tsan}" \
  exec ./tools/run_sanitize.sh thread
