#!/usr/bin/env bash
# ThreadSanitizer pass over the concurrency-sensitive tests: the thread pool,
# the parallel ExperimentRunner sweep (single-flight cache), the parallel FST
# metric loops, and the forked-engine policy FST (PolicyFstFork.* drains
# engine forks concurrently on the pool). Sibling of tools/run_benches.sh —
# run it whenever the threading layers change; any data race fails the suite
# loudly.
#
# Env knobs:
#   PSCHED_TSAN_BUILD_DIR  build directory (default build-tsan)
#   PSCHED_THREADS         pool size under test (default 4, so races surface
#                          even on small machines)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${PSCHED_TSAN_BUILD_DIR:-build-tsan}"
FILTER='ThreadPool.*:GlobalPool.*:ExperimentRunner.*:PolicyFst.*:PolicyFstFork.*:HybridFst.*'

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release -DPSCHED_SANITIZE=thread \
  -DPSCHED_BUILD_BENCH=OFF >/dev/null
cmake --build "$BUILD" -j "$(nproc)" --target psched_tests

PSCHED_THREADS="${PSCHED_THREADS:-4}" TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
  "$BUILD/psched_tests" --gtest_filter="$FILTER"
echo "tsan: clean ($FILTER)"
