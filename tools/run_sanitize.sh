#!/usr/bin/env bash
# One sanitizer gate for all three instrumentations, sharing a single
# build-dir/flag path (tools/run_tsan.sh is a thin wrapper over this):
#
#   tools/run_sanitize.sh {thread|address|undefined}
#
# Configures a per-sanitizer build tree (-DPSCHED_SANITIZE=<kind>, benches
# off) and runs the FULL ctest suite under it — unit, property, campaign,
# journal, and the psched_lint tree check alike. Any report fails the suite
# loudly (halt_on_error).
#
# Env knobs:
#   PSCHED_SAN_BUILD_DIR  build directory (default build-san-<kind>)
#   PSCHED_SAN_JOBS       parallel build/test jobs (default nproc)
#   PSCHED_THREADS        pool size under test (default 4, so races surface
#                         even on small machines)
#   ASAN_OPTIONS / UBSAN_OPTIONS / TSAN_OPTIONS  override the strict defaults
set -euo pipefail
cd "$(dirname "$0")/.."

KIND="${1:-}"
case "$KIND" in
  thread|address|undefined) ;;
  *)
    echo "usage: $0 {thread|address|undefined}" >&2
    exit 2
    ;;
esac

BUILD="${PSCHED_SAN_BUILD_DIR:-build-san-$KIND}"
JOBS="${PSCHED_SAN_JOBS:-$(nproc)}"

cmake -B "$BUILD" -S . -DCMAKE_BUILD_TYPE=Release -DPSCHED_SANITIZE="$KIND" \
  -DPSCHED_BUILD_BENCH=OFF >/dev/null
cmake --build "$BUILD" -j "$JOBS"

export ASAN_OPTIONS="${ASAN_OPTIONS:-halt_on_error=1:detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-halt_on_error=1:print_stacktrace=1}"
export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}"
export PSCHED_THREADS="${PSCHED_THREADS:-4}"

ctest --test-dir "$BUILD" --output-on-failure -j "$JOBS"
echo "sanitize($KIND): full ctest suite clean ($BUILD)"
