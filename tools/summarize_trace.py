#!/usr/bin/env python3
"""Summarize a psched observability trace (Chrome trace-event JSON).

Reads the file written by --trace / PSCHED_TRACE and prints, stdlib-only:

  * phase totals   — per span name: count, total/mean/max duration
  * slowest cells  — the top-N "cell" spans by duration, with their policy arg
  * pool utilization — per thread lane: busy time inside cell/fork-batch
    spans over the traced wall interval (an estimate: spans nest, so the
    outermost simulation-bearing spans are what is summed)
  * counters       — the deterministic / scheduling counter dump, nonzero rows

Validation flags let CI assert trace shape without a JSON toolchain:

  --require-spans a,b,c   exit 1 unless every named span appears
  --require-counters      exit 1 unless some counter is nonzero

Usage:
  tools/summarize_trace.py trace.json [--top N] [--require-spans names]
                                      [--require-counters]
"""

import argparse
import json
import sys
from collections import defaultdict


def load_trace(path):
    try:
        with open(path, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        sys.exit("summarize_trace: cannot read %s: %s" % (path, error))
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        sys.exit("summarize_trace: %s is not a trace-event JSON "
                 "(no traceEvents key)" % path)
    return trace


def complete_events(trace):
    events = []
    for event in trace["traceEvents"]:
        if event.get("ph") != "X":
            continue
        events.append({
            "name": event.get("name", "?"),
            "tid": event.get("tid", 0),
            "ts": int(event.get("ts", 0)),
            "dur": int(event.get("dur", 0)),
            "arg": (event.get("args") or {}).get("arg", ""),
        })
    return events


def fmt_us(us):
    if us >= 1_000_000:
        return "%.2fs" % (us / 1_000_000)
    if us >= 1_000:
        return "%.2fms" % (us / 1_000)
    return "%dus" % us


def print_phase_totals(events):
    phases = defaultdict(lambda: {"count": 0, "total": 0, "max": 0})
    for event in events:
        slot = phases[event["name"]]
        slot["count"] += 1
        slot["total"] += event["dur"]
        slot["max"] = max(slot["max"], event["dur"])
    print("== phase totals ==")
    print("%-16s %8s %12s %12s %12s" % ("span", "count", "total", "mean", "max"))
    for name, slot in sorted(phases.items(), key=lambda kv: -kv[1]["total"]):
        mean = slot["total"] / slot["count"]
        print("%-16s %8d %12s %12s %12s"
              % (name, slot["count"], fmt_us(slot["total"]), fmt_us(mean),
                 fmt_us(slot["max"])))


def print_slowest_cells(events, top):
    cells = sorted((e for e in events if e["name"] == "cell"),
                   key=lambda e: -e["dur"])
    if not cells:
        print("\n(no cell spans in this trace)")
        return
    print("\n== slowest cells (top %d of %d) ==" % (min(top, len(cells)), len(cells)))
    print("%-12s %6s  %s" % ("duration", "tid", "policy"))
    for event in cells[:top]:
        print("%-12s %6d  %s" % (fmt_us(event["dur"]), event["tid"],
                                 event["arg"] or "?"))


def print_pool_utilization(events):
    # Busy time per thread lane = time inside the outermost simulation-bearing
    # spans (cells, and fork-batches landing on pool workers). Spans of other
    # kinds nest around or inside these, so this is an estimate, not an
    # accounting identity.
    busy = defaultdict(int)
    for event in events:
        if event["name"] in ("cell", "fork-batch"):
            busy[event["tid"]] += event["dur"]
    if not busy or not events:
        return
    t0 = min(e["ts"] for e in events)
    t1 = max(e["ts"] + e["dur"] for e in events)
    wall = max(1, t1 - t0)
    print("\n== pool utilization (cell + fork-batch busy time / traced interval %s) =="
          % fmt_us(wall))
    for tid in sorted(busy):
        fraction = busy[tid] / wall
        bar = "#" * int(round(fraction * 40))
        print("tid %-4d %8s  %5.1f%%  %s" % (tid, fmt_us(busy[tid]),
                                             fraction * 100.0, bar))


def print_counters(trace):
    counters = trace.get("counters")
    if not isinstance(counters, dict):
        print("\n(no counters object in this trace)")
        return False
    any_nonzero = False
    print("\n== counters (nonzero) ==")
    for klass in ("deterministic", "scheduling"):
        for name, value in sorted((counters.get(klass) or {}).items()):
            if value:
                any_nonzero = True
                print("%-36s %-14s %12d" % (name, klass, value))
    if not any_nonzero:
        print("(all counters are zero)")
    return any_nonzero


def main():
    parser = argparse.ArgumentParser(
        description="Summarize a psched --trace / PSCHED_TRACE JSON file.")
    parser.add_argument("trace", help="trace JSON written by --trace")
    parser.add_argument("--top", type=int, default=10,
                        help="slowest cells to list (default 10)")
    parser.add_argument("--require-spans", default="",
                        help="comma-separated span names that must appear "
                             "(exit 1 otherwise)")
    parser.add_argument("--require-counters", action="store_true",
                        help="exit 1 unless at least one counter is nonzero")
    args = parser.parse_args()

    trace = load_trace(args.trace)
    events = complete_events(trace)
    print("# %s: %d complete events, %d thread lanes"
          % (args.trace, len(events), len({e["tid"] for e in events})))

    print_phase_totals(events)
    print_slowest_cells(events, args.top)
    print_pool_utilization(events)
    any_nonzero = print_counters(trace)

    failures = []
    if args.require_spans:
        present = {e["name"] for e in events}
        for name in filter(None, (s.strip() for s in args.require_spans.split(","))):
            if name not in present:
                failures.append("required span '%s' not in trace" % name)
    if args.require_counters and not any_nonzero:
        failures.append("all counters are zero")
    for failure in failures:
        print("summarize_trace: FAIL: %s" % failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
