#include "psched_lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace psched::lint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Rule metadata
// ---------------------------------------------------------------------------

struct RuleInfo {
  Rule rule;
  const char* name;
};

constexpr RuleInfo kRules[] = {
    {Rule::kRawRng, "raw-rng"},
    {Rule::kWallClock, "wall-clock"},
    {Rule::kParallelFpAccum, "parallel-fp-accum"},
    {Rule::kSchedulerClone, "scheduler-clone"},
    {Rule::kRawFileWrite, "raw-file-write"},
    {Rule::kUnorderedIter, "unordered-iter"},
    {Rule::kRawFaultEnv, "raw-fault-env"},
    {Rule::kRawTraceEnv, "raw-trace-env"},
    {Rule::kBadSuppression, "bad-suppression"},
};

// Files where a rule's flagged construct IS the sanctioned implementation.
// Matched by path suffix so the list works from any checkout location (and is
// itself testable through fixture files mirroring these suffixes).
struct Sanction {
  Rule rule;
  const char* path_suffix;
};

constexpr Sanction kSanctions[] = {
    // The one place randomness is allowed to touch <random> directly.
    {Rule::kRawRng, "src/util/rng.hpp"},
    {Rule::kRawRng, "src/util/rng.cpp"},
    // StopToken deadlines are the one legitimate monotonic-clock consumer:
    // they bound wall time of a run, they never feed simulation results.
    {Rule::kWallClock, "src/util/stop_token.cpp"},
    // The durability layer itself: atomic_write_file's tmp+rename dance and
    // the journal's O_APPEND fd are the sanctioned raw-write call sites.
    {Rule::kRawFileWrite, "src/util/atomic_file.cpp"},
    {Rule::kRawFileWrite, "src/scenario/journal.cpp"},
    // The fault registry is the one reader of PSCHED_FAULTS /
    // PSCHED_FAULTS_REPORT: arming is parsed exactly once at static init so
    // every fault point sees one consistent view.
    {Rule::kRawFaultEnv, "src/util/fault.cpp"},
    // The chaos harness bounds *child process* wall time (hang detection,
    // kill legs); like StopToken deadlines, none of it feeds results.
    {Rule::kWallClock, "tools/psched_chaos.cpp"},
    // The observability layer: src/obs/clock.cpp is the ONE sanctioned trace
    // timestamp source (span timing never feeds simulation results), and
    // src/obs/obs.cpp's static-init EnvInit is the one reader of PSCHED_TRACE
    // — mirroring the fault registry's once-at-startup arming discipline.
    {Rule::kWallClock, "src/obs/clock.cpp"},
    {Rule::kRawTraceEnv, "src/obs/obs.cpp"},
};

bool is_sanctioned(Rule rule, const std::string& path) {
  for (const Sanction& s : kSanctions) {
    const std::string suffix(s.path_suffix);
    if (s.rule == rule && path.size() >= suffix.size() &&
        path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0)
      return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Comment/string stripping (line structure preserved)
// ---------------------------------------------------------------------------

struct Comment {
  int line = 0;       ///< line the comment starts on
  bool own_line = false;  ///< nothing but whitespace precedes it on that line
  std::string text;
};

struct Literal {
  int line = 0;       ///< line the string literal starts on
  std::string text;   ///< contents, escapes kept verbatim
};

// Replaces comments, string/char literal contents, and preprocessor
// directives with spaces so the tokenizer only ever sees code. Newlines are
// kept, so token line numbers match the original file. String literal texts
// are preserved out-of-band for the rules that need them (raw-fault-env).
struct StripResult {
  std::string code;
  std::vector<Comment> comments;
  std::vector<Literal> literals;
};

StripResult strip(const std::string& src) {
  StripResult out;
  out.code.assign(src.size(), ' ');
  for (std::size_t i = 0; i < src.size(); ++i)
    if (src[i] == '\n') out.code[i] = '\n';

  enum class State { kCode, kLineComment, kBlockComment, kString, kChar, kRawString, kPreproc };
  State state = State::kCode;
  int line = 1;
  bool line_has_code = false;  // a non-whitespace code char seen on this line
  std::string raw_delim;       // raw string closing delimiter: )delim"
  Comment current;
  Literal literal;

  std::size_t i = 0;
  while (i < src.size()) {
    const char c = src[i];
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          current = Comment{line, !line_has_code, ""};
          i += 2;
          continue;
        }
        if (c == '/' && next == '*') {
          state = State::kBlockComment;
          current = Comment{line, !line_has_code, ""};
          i += 2;
          continue;
        }
        if (c == '#' && !line_has_code) {
          state = State::kPreproc;
          ++i;
          continue;
        }
        if (c == 'R' && next == '"' &&
            (i == 0 || (!std::isalnum(static_cast<unsigned char>(src[i - 1])) && src[i - 1] != '_'))) {
          std::size_t j = i + 2;
          std::string delim;
          while (j < src.size() && src[j] != '(') delim += src[j++];
          raw_delim = ")" + delim + "\"";
          out.code[i] = '"';  // keep a placeholder so the literal stays one token
          literal = Literal{line, ""};
          state = State::kRawString;
          i = j + 1;
          continue;
        }
        if (c == '"') {
          out.code[i] = '"';
          literal = Literal{line, ""};
          state = State::kString;
          line_has_code = true;
          ++i;
          continue;
        }
        if (c == '\'') {
          out.code[i] = '\'';
          state = State::kChar;
          line_has_code = true;
          ++i;
          continue;
        }
        if (c == '\n') {
          ++line;
          line_has_code = false;
        } else {
          out.code[i] = c;
          if (!std::isspace(static_cast<unsigned char>(c))) line_has_code = true;
        }
        ++i;
        continue;
      case State::kLineComment:
        if (c == '\n') {
          out.comments.push_back(current);
          state = State::kCode;
          ++line;
          line_has_code = false;
        } else {
          current.text += c;
        }
        ++i;
        continue;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out.comments.push_back(current);
          state = State::kCode;
          i += 2;
          continue;
        }
        if (c == '\n') {
          ++line;
          current.text += ' ';
        } else {
          current.text += c;
        }
        ++i;
        continue;
      case State::kString:
        if (c == '\\' && next != '\0') {
          literal.text += c;
          literal.text += next;
          i += 2;
          continue;
        }
        if (c == '"') {
          out.code[i] = '"';
          out.literals.push_back(literal);
          state = State::kCode;
        } else if (c == '\n') {
          ++line;  // unterminated; keep line counts honest
          out.literals.push_back(literal);
          state = State::kCode;
        } else {
          literal.text += c;
        }
        ++i;
        continue;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          i += 2;
          continue;
        }
        if (c == '\'') {
          out.code[i] = '\'';
          state = State::kCode;
        } else if (c == '\n') {
          ++line;
          state = State::kCode;
        }
        ++i;
        continue;
      case State::kRawString:
        if (c == '\n') ++line;
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          out.code[i + raw_delim.size() - 1] = '"';
          out.literals.push_back(literal);
          i += raw_delim.size();
          state = State::kCode;
          continue;
        }
        literal.text += c;
        ++i;
        continue;
      case State::kPreproc:
        // Directives (incl. #include <...> whose angle payload would
        // otherwise leak tokens) are invisible to the rules. Honour line
        // continuations.
        if (c == '\\' && next == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (c == '\n') {
          ++line;
          line_has_code = false;
          state = State::kCode;
        }
        ++i;
        continue;
    }
  }
  if (state == State::kLineComment || state == State::kBlockComment)
    out.comments.push_back(current);
  return out;
}

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kNumber, kPunct, kLiteral };
  Kind kind = Kind::kPunct;
  std::string text;
  int line = 0;
};

bool ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}
bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::vector<Token> tokenize(const std::string& code) {
  static const char* kTwoCharOps[] = {"::", "->", "+=", "-=", "*=", "/=", "==", "!=",
                                      "<=", ">=", "&&", "||", "++", "--", "<<", ">>"};
  std::vector<Token> tokens;
  int line = 1;
  std::size_t i = 0;
  while (i < code.size()) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '"' || c == '\'') {
      tokens.push_back({Token::Kind::kLiteral, std::string(1, c), line});
      // literal contents were blanked; skip to the closing quote if adjacent
      ++i;
      while (i < code.size() && (code[i] == ' ')) ++i;
      if (i < code.size() && code[i] == c) ++i;
      continue;
    }
    if (ident_start(c)) {
      std::size_t j = i + 1;
      while (j < code.size() && ident_char(code[j])) ++j;
      tokens.push_back({Token::Kind::kIdent, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
      std::size_t j = i + 1;
      while (j < code.size() && (ident_char(code[j]) || code[j] == '.')) ++j;
      tokens.push_back({Token::Kind::kNumber, code.substr(i, j - i), line});
      i = j;
      continue;
    }
    bool matched = false;
    for (const char* op : kTwoCharOps) {
      if (code.compare(i, 2, op) == 0) {
        tokens.push_back({Token::Kind::kPunct, op, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    tokens.push_back({Token::Kind::kPunct, std::string(1, c), line});
    ++i;
  }
  return tokens;
}

// Index of the token matching the opener at `open` ('(' -> ')', '{' -> '}',
// '[' -> ']'); tokens.size() when unbalanced.
std::size_t match_forward(const std::vector<Token>& tokens, std::size_t open,
                          const char* open_text, const char* close_text) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (tokens[i].text == open_text) ++depth;
    else if (tokens[i].text == close_text && --depth == 0) return i;
  }
  return tokens.size();
}

// Skip a template argument list starting at tokens[i] == "<"; returns the
// index one past the matching ">". ">>" closes two levels.
std::size_t skip_template_args(const std::vector<Token>& tokens, std::size_t i) {
  int depth = 0;
  for (; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (t == "<") ++depth;
    else if (t == ">") {
      if (--depth == 0) return i + 1;
    } else if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (t == ";") {
      return i;  // malformed / not actually a template — bail out
    }
  }
  return i;
}

bool is_ident(const std::vector<Token>& tokens, std::size_t i, const char* text) {
  return i < tokens.size() && tokens[i].kind == Token::Kind::kIdent && tokens[i].text == text;
}

bool any_of_idents(const Token& token, std::initializer_list<const char*> names) {
  if (token.kind != Token::Kind::kIdent) return false;
  for (const char* name : names)
    if (token.text == name) return true;
  return false;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

void add(std::vector<Finding>& out, const std::string& file, int line, Rule rule,
         std::string message) {
  out.push_back(Finding{file, line, rule, std::move(message)});
}

// Rule raw-rng: randomness outside util::Rng. rand()-family and
// std::random_device are banned on sight; a standard engine constructed
// without a seed is banned (a seeded one outside rng.* is still suspect, but
// the contract as stated bans only unseeded construction — util::Rng::fork
// is the sanctioned way to derive streams).
void rule_raw_rng(const std::vector<Token>& tokens, const std::string& file,
                  std::vector<Finding>& out) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (any_of_idents(t, {"random_device"})) {
      add(out, file, t.line, Rule::kRawRng,
          "std::random_device is nondeterministic; all randomness must flow through "
          "util::Rng (seeded, forkable) so one seed reproduces every experiment");
      continue;
    }
    if (any_of_idents(t, {"rand", "srand", "rand_r", "drand48", "lrand48", "mrand48"}) &&
        i + 1 < tokens.size() && tokens[i + 1].text == "(") {
      add(out, file, t.line, Rule::kRawRng,
          "C rand()-family uses hidden global state; use util::Rng so streams are "
          "seeded, forkable, and thread-independent");
      continue;
    }
    if (any_of_idents(t, {"mt19937", "mt19937_64", "minstd_rand", "minstd_rand0",
                          "default_random_engine", "ranlux24", "ranlux48", "knuth_b"})) {
      // type [ident] ; | , | ) | ()| {}  -> default-constructed = unseeded
      std::size_t j = i + 1;
      bool unseeded = false;
      if (j < tokens.size() && tokens[j].kind == Token::Kind::kIdent) {
        const std::size_t k = j + 1;
        if (k < tokens.size()) {
          const std::string& after = tokens[k].text;
          if (after == ";")
            unseeded = true;
          else if ((after == "(" || after == "{") && k + 1 < tokens.size() &&
                   (tokens[k + 1].text == ")" || tokens[k + 1].text == "}"))
            unseeded = true;
        }
      } else if (j + 1 < tokens.size() && tokens[j].text == "(" && tokens[j + 1].text == ")") {
        unseeded = true;  // temporary: std::mt19937()
      }
      if (unseeded)
        add(out, file, t.line, Rule::kRawRng,
            "unseeded standard RNG engine (" + t.text +
                ") — construct util::Rng from an explicit seed instead, so runs are "
                "reproducible bit-for-bit");
    }
  }
}

// Rule wall-clock: simulation time is the only time. Any wall/monotonic clock
// read outside the sanctioned deadline plumbing makes results depend on when
// (or how fast) the host ran the experiment.
void rule_wall_clock(const std::vector<Token>& tokens, const std::string& file,
                     std::vector<Finding>& out) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (any_of_idents(t, {"system_clock", "steady_clock", "high_resolution_clock",
                          "gettimeofday", "clock_gettime", "timespec_get", "localtime",
                          "localtime_r", "gmtime", "gmtime_r", "mktime", "strftime"})) {
      add(out, file, t.line, Rule::kWallClock,
          t.text +
              " reads host time; simulation time (engine now()) is the only time — "
              "results must not depend on when or how fast the host ran");
      continue;
    }
    if (any_of_idents(t, {"time", "clock"}) && i + 1 < tokens.size() && tokens[i + 1].text == "(" &&
        i > 0) {
      // Only a call in expression context is the C library function; `long
      // time() const` declarations and `obj.time()` member calls are not.
      static const char* kExprContext[] = {"(",  ",",  "=",  ";",  "{",  "}", "return", "<",
                                           ">",  "+",  "-",  "*",  "/",  "?", ":",      "::",
                                           "&&", "||", "==", "!=", "<=", ">=", "!"};
      bool expr = false;
      for (const char* prev : kExprContext)
        if (tokens[i - 1].text == prev) expr = true;
      if (expr)
        add(out, file, t.line, Rule::kWallClock,
            "C " + t.text + "() reads host time; simulation time is the only time");
    }
  }
}

// Rule parallel-fp-accum: the serial-reduction contract from PRs 2/4. Byte-
// identical sweeps at any --jobs level hold because parallel lambdas only
// ever write per-index slots; any compound accumulation in one is either a
// data race or a nondeterministic floating-point reduction order.
struct LambdaBody {
  std::string name;  ///< empty for unnamed
  std::size_t begin = 0, end = 0;  ///< token indices of { ... } body (exclusive of braces)
};

std::vector<LambdaBody> collect_named_lambdas(const std::vector<Token>& tokens) {
  std::vector<LambdaBody> lambdas;
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (tokens[i].kind != Token::Kind::kIdent) continue;
    if (tokens[i + 1].text != "=" || tokens[i + 2].text != "[") continue;
    std::size_t j = match_forward(tokens, i + 2, "[", "]");
    if (j >= tokens.size()) continue;
    ++j;
    if (j < tokens.size() && tokens[j].text == "(") {
      j = match_forward(tokens, j, "(", ")");
      if (j >= tokens.size()) continue;
      ++j;
    }
    // skip specifiers (mutable, noexcept, -> ret) up to the body brace
    std::size_t guard = 0;
    while (j < tokens.size() && tokens[j].text != "{" && tokens[j].text != ";" && guard++ < 16)
      ++j;
    if (j >= tokens.size() || tokens[j].text != "{") continue;
    const std::size_t close = match_forward(tokens, j, "{", "}");
    if (close >= tokens.size()) continue;
    lambdas.push_back(LambdaBody{tokens[i].text, j + 1, close});
  }
  return lambdas;
}

void flag_compound_assign(const std::vector<Token>& tokens, std::size_t begin, std::size_t end,
                          const std::string& file, std::vector<Finding>& out) {
  for (std::size_t i = begin; i < end && i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (t == "+=" || t == "-=" || t == "*=" || t == "/=")
      add(out, file, tokens[i].line, Rule::kParallelFpAccum,
          "compound assignment ('" + t +
              "') inside a parallel_for/submit lambda — parallel tasks may only write "
              "per-index slots; run reductions serially so results are byte-identical "
              "at every --jobs level");
  }
}

void rule_parallel_fp_accum(const std::vector<Token>& tokens, const std::string& file,
                            std::vector<Finding>& out) {
  const std::vector<LambdaBody> lambdas = collect_named_lambdas(tokens);
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!is_ident(tokens, i, "parallel_for") && !is_ident(tokens, i, "submit")) continue;
    if (i + 1 >= tokens.size() || tokens[i + 1].text != "(") continue;
    const std::size_t close = match_forward(tokens, i + 1, "(", ")");
    if (close >= tokens.size()) continue;
    // Inline lambdas (and any other accumulating expression) in the call.
    flag_compound_assign(tokens, i + 2, close, file, out);
    // Named lambdas passed as arguments: lint their bodies, wherever defined.
    for (std::size_t a = i + 2; a < close; ++a) {
      if (tokens[a].kind != Token::Kind::kIdent) continue;
      for (const LambdaBody& lambda : lambdas)
        if (lambda.name == tokens[a].text)
          flag_compound_assign(tokens, lambda.begin, lambda.end, file, out);
    }
  }
}

// Rule scheduler-clone: the fork contract from PR 4. fork_for_arrival deep-
// copies the policy via Scheduler::clone(); a subclass without an override
// inherits the nullptr default and silently loses fork support (the
// policy-knowledge FST then throws at runtime instead of being caught here).
void rule_scheduler_clone(const std::vector<Token>& tokens, const std::string& file,
                          std::vector<Finding>& out) {
  for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (!is_ident(tokens, i, "class") && !is_ident(tokens, i, "struct")) continue;
    if (tokens[i + 1].kind != Token::Kind::kIdent) continue;
    const std::string& class_name = tokens[i + 1].text;
    // Find the introducer: ';' = forward declaration, '{' = body. The base
    // clause lives between ':' and '{'.
    std::size_t colon = 0, open = 0;
    for (std::size_t j = i + 2; j < tokens.size(); ++j) {
      const std::string& t = tokens[j].text;
      if (t == ";") break;
      if (t == ":" && colon == 0) colon = j;
      if (t == "{") {
        open = j;
        break;
      }
    }
    if (open == 0 || colon == 0) continue;
    bool derives_scheduler = false;
    for (std::size_t j = colon + 1; j < open; ++j)
      if (is_ident(tokens, j, "Scheduler")) derives_scheduler = true;
    if (!derives_scheduler) continue;
    const std::size_t close = match_forward(tokens, open, "{", "}");
    bool has_clone = false;
    for (std::size_t j = open + 1; j < close && j + 1 < tokens.size(); ++j)
      if (is_ident(tokens, j, "clone") && tokens[j + 1].text == "(") has_clone = true;
    if (!has_clone)
      add(out, file, tokens[i].line, Rule::kSchedulerClone,
          "class " + class_name +
              " derives from Scheduler but does not override clone() — every policy "
              "must be deep-copyable or the forkable engine (policy-knowledge FST, "
              "what-if forks) silently loses support for it");
  }
}

// Rule raw-file-write: the PR 6 durability contract. A results store written
// through a plain ofstream/fopen can be torn by a crash; util::atomic_write_file
// (tmp + fsync + rename) and the journal's fsynced O_APPEND fd are the only
// sanctioned write paths.
void rule_raw_file_write(const std::vector<Token>& tokens, const std::string& file,
                         std::vector<Finding>& out) {
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& t = tokens[i];
    if (any_of_idents(t, {"ofstream"})) {
      add(out, file, t.line, Rule::kRawFileWrite,
          "direct std::ofstream write — durable outputs must go through "
          "util::atomic_write_file so a crash can never leave a torn file");
      continue;
    }
    if (any_of_idents(t, {"fopen", "freopen", "creat"}) && i + 1 < tokens.size() &&
        tokens[i + 1].text == "(") {
      add(out, file, t.line, Rule::kRawFileWrite,
          t.text + "() opens a raw write path — use util::atomic_write_file");
      continue;
    }
    // `::open(` in the global namespace; `Foo::open` qualified names are not
    // it (but `return ::open(...)` is — `return` is a keyword, not a scope).
    if (t.text == "open" && i > 0 && tokens[i - 1].text == "::" &&
        (i < 2 || tokens[i - 2].kind != Token::Kind::kIdent ||
         tokens[i - 2].text == "return")) {
      add(out, file, t.line, Rule::kRawFileWrite,
          "raw ::open() — file descriptors that write results must come from the "
          "durability layer (util::atomic_write_file / the campaign journal)");
    }
  }
}

// Rule unordered-iter: iteration order of unordered containers varies across
// libstdc++ versions, hashes, and insertion histories. Anything that feeds
// output, result ordering, or a floating-point reduction must iterate in a
// sorted/stable order, or carry an explicit justification.
std::vector<std::string> collect_unordered_names(const std::vector<Token>& tokens) {
  std::vector<std::string> names;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!any_of_idents(tokens[i],
                       {"unordered_map", "unordered_set", "unordered_multimap",
                        "unordered_multiset"}))
      continue;
    std::size_t j = i + 1;
    if (j < tokens.size() && tokens[j].text == "<") j = skip_template_args(tokens, j);
    while (j < tokens.size() &&
           (tokens[j].text == "&" || tokens[j].text == "*" || is_ident(tokens, j, "const")))
      ++j;
    if (j < tokens.size() && tokens[j].kind == Token::Kind::kIdent) names.push_back(tokens[j].text);
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

void rule_unordered_iter(const std::vector<Token>& tokens, const std::vector<Token>& header_tokens,
                         const std::string& file, std::vector<Finding>& out) {
  std::vector<std::string> names = collect_unordered_names(tokens);
  const std::vector<std::string> header_names = collect_unordered_names(header_tokens);
  names.insert(names.end(), header_names.begin(), header_names.end());
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  if (names.empty()) return;
  const auto is_unordered = [&](const Token& t) {
    return t.kind == Token::Kind::kIdent &&
           std::binary_search(names.begin(), names.end(), t.text);
  };
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    // range-for whose range expression mentions an unordered container
    if (is_ident(tokens, i, "for") && i + 1 < tokens.size() && tokens[i + 1].text == "(") {
      const std::size_t close = match_forward(tokens, i + 1, "(", ")");
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (tokens[j].text == "(") ++depth;
        else if (tokens[j].text == ")") --depth;
        else if (tokens[j].text == ":" && depth == 1 && colon == 0) colon = j;
        else if (tokens[j].text == ";") { colon = 0; break; }  // classic for
      }
      if (colon != 0)
        for (std::size_t j = colon + 1; j < close; ++j)
          if (is_unordered(tokens[j])) {
            add(out, file, tokens[i].line, Rule::kUnorderedIter,
                "iterating '" + tokens[j].text +
                    "' (unordered container): iteration order is nondeterministic — "
                    "sort keys first, or justify with psched-lint: allow(unordered-iter)");
            break;
          }
    }
    // iterator-based: name.begin() / name.cbegin()
    if (is_unordered(tokens[i]) && i + 2 < tokens.size() && tokens[i + 1].text == "." &&
        (is_ident(tokens, i + 2, "begin") || is_ident(tokens, i + 2, "cbegin")))
      add(out, file, tokens[i].line, Rule::kUnorderedIter,
          "iterating '" + tokens[i].text +
              "' (unordered container): iteration order is nondeterministic — sort "
              "keys first, or justify with psched-lint: allow(unordered-iter)");
  }
}

// Rule raw-fault-env: the PR 9 fault-injection contract. src/util/fault.cpp
// parses PSCHED_FAULTS / PSCHED_FAULTS_REPORT exactly once at static init, so
// every fault point shares one consistent arming view and chaos runs are
// reproducible. A stray getenv("PSCHED_FAULT*") elsewhere re-reads the
// environment at some later, racy point and silently diverges from the
// registry — query util::fault (check / inject / report) instead. Setting the
// variables (setenv in a test or harness) is fine; only reads are owned.
void rule_raw_fault_env(const std::vector<Token>& tokens, const std::vector<Literal>& literals,
                        const std::string& file, std::vector<Finding>& out) {
  for (const Literal& literal : literals) {
    if (literal.text.compare(0, 12, "PSCHED_FAULT") != 0) continue;
    bool env_read = false;
    for (const Token& t : tokens)
      if ((t.line == literal.line || t.line + 1 == literal.line) &&
          any_of_idents(t, {"getenv", "secure_getenv"}))
        env_read = true;
    if (env_read)
      add(out, file, literal.line, Rule::kRawFaultEnv,
          "getenv(\"" + literal.text +
              "\") outside the fault registry — PSCHED_FAULTS is parsed once at startup "
              "by src/util/fault.cpp; query util::fault (check/inject/report) instead of "
              "re-reading the environment");
  }
}

// Rule raw-trace-env: the observability twin of raw-fault-env. The obs
// layer's EnvInit (src/obs/obs.cpp) reads PSCHED_TRACE exactly once at static
// init, so every count()/Span site shares one consistent arming view for the
// whole process — the byte-identity contract (traced vs untraced stores) is
// only testable because arming cannot change mid-run. A getenv("PSCHED_TRACE")
// anywhere else reintroduces exactly that hazard — call obs::armed() /
// obs::arm() / obs::set_exit_trace_path() instead.
void rule_raw_trace_env(const std::vector<Token>& tokens, const std::vector<Literal>& literals,
                        const std::string& file, std::vector<Finding>& out) {
  for (const Literal& literal : literals) {
    if (literal.text.compare(0, 12, "PSCHED_TRACE") != 0) continue;
    bool env_read = false;
    for (const Token& t : tokens)
      if ((t.line == literal.line || t.line + 1 == literal.line) &&
          any_of_idents(t, {"getenv", "secure_getenv"}))
        env_read = true;
    if (env_read)
      add(out, file, literal.line, Rule::kRawTraceEnv,
          "getenv(\"" + literal.text +
              "\") outside the obs registry — PSCHED_TRACE is read once at startup by "
              "src/obs/obs.cpp; use obs::armed()/obs::arm()/obs::set_exit_trace_path() "
              "instead of re-reading the environment");
  }
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

struct Suppression {
  Rule rule = Rule::kRawRng;
  int line = 0;
  bool own_line = false;
};

void parse_suppressions(const std::vector<Comment>& comments, const std::string& file,
                        std::vector<Suppression>& suppressions, std::vector<Finding>& out) {
  for (const Comment& comment : comments) {
    const std::size_t tag = comment.text.find("psched-lint:");
    if (tag == std::string::npos) continue;
    std::size_t p = tag + std::string("psched-lint:").size();
    while (p < comment.text.size() && std::isspace(static_cast<unsigned char>(comment.text[p])))
      ++p;
    // Only engage when the next word is `allow` — prose that merely mentions
    // the tool ("psched-lint: the contract checker") is not a directive. A
    // near-miss like `allow raw-rng` IS treated as one, so typos fail loudly.
    if (comment.text.compare(p, 5, "allow") != 0) continue;
    if (comment.text.compare(p, 6, "allow(") != 0) {
      add(out, file, comment.line, Rule::kBadSuppression,
          "malformed psched-lint comment: expected 'psched-lint: allow(<rule>): <reason>'");
      continue;
    }
    p += 6;
    const std::size_t close = comment.text.find(')', p);
    if (close == std::string::npos) {
      add(out, file, comment.line, Rule::kBadSuppression,
          "malformed psched-lint comment: unterminated allow(");
      continue;
    }
    const std::string name = comment.text.substr(p, close - p);
    Rule rule;
    if (!rule_from_name(name, rule)) {
      add(out, file, comment.line, Rule::kBadSuppression,
          "unknown rule '" + name + "' in psched-lint: allow(...)");
      continue;
    }
    // The reason is mandatory: a suppression that doesn't say *why* is a
    // contract violation with extra steps.
    std::size_t r = close + 1;
    while (r < comment.text.size() &&
           (std::isspace(static_cast<unsigned char>(comment.text[r])) ||
            comment.text[r] == ':' || comment.text[r] == '-'))
      ++r;
    if (r >= comment.text.size()) {
      add(out, file, comment.line, Rule::kBadSuppression,
          "psched-lint: allow(" + name +
              ") needs a reason: 'psched-lint: allow(" + name + "): <why this is safe>'");
      continue;
    }
    suppressions.push_back(Suppression{rule, comment.line, comment.own_line});
  }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

std::string read_file(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("psched-lint: cannot read " + path.string());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool lintable_extension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".cc" || ext == ".cxx" || ext == ".hpp" || ext == ".hh" ||
         ext == ".h" || ext == ".hxx";
}

}  // namespace

const char* rule_name(Rule rule) {
  for (const RuleInfo& info : kRules)
    if (info.rule == rule) return info.name;
  return "unknown";
}

bool rule_from_name(const std::string& name, Rule& out) {
  for (const RuleInfo& info : kRules) {
    if (info.rule == Rule::kBadSuppression) continue;
    if (name == info.name) {
      out = info.rule;
      return true;
    }
  }
  return false;
}

std::vector<Finding> lint_file(const FileInput& input) {
  const StripResult stripped = strip(input.content);
  const std::vector<Token> tokens = tokenize(stripped.code);
  std::vector<Token> header_tokens;
  if (!input.sibling_header.empty())
    header_tokens = tokenize(strip(input.sibling_header).code);

  std::vector<Finding> findings;
  if (!is_sanctioned(Rule::kRawRng, input.path)) rule_raw_rng(tokens, input.path, findings);
  if (!is_sanctioned(Rule::kWallClock, input.path)) rule_wall_clock(tokens, input.path, findings);
  rule_parallel_fp_accum(tokens, input.path, findings);
  rule_scheduler_clone(tokens, input.path, findings);
  if (!is_sanctioned(Rule::kRawFileWrite, input.path))
    rule_raw_file_write(tokens, input.path, findings);
  rule_unordered_iter(tokens, header_tokens, input.path, findings);
  if (!is_sanctioned(Rule::kRawFaultEnv, input.path))
    rule_raw_fault_env(tokens, stripped.literals, input.path, findings);
  if (!is_sanctioned(Rule::kRawTraceEnv, input.path))
    rule_raw_trace_env(tokens, stripped.literals, input.path, findings);

  std::vector<Suppression> suppressions;
  parse_suppressions(stripped.comments, input.path, suppressions, findings);

  // A standalone suppression covers the next line that has any code on it.
  const auto next_code_line = [&](int line) {
    int best = 0;
    for (const Token& t : tokens)
      if (t.line > line && (best == 0 || t.line < best)) best = t.line;
    return best;
  };
  std::vector<Finding> kept;
  for (Finding& f : findings) {
    bool suppressed = false;
    if (f.rule != Rule::kBadSuppression)
      for (const Suppression& s : suppressions)
        if (s.rule == f.rule &&
            (s.line == f.line || (s.own_line && next_code_line(s.line) == f.line)))
          suppressed = true;
    if (!suppressed) kept.push_back(std::move(f));
  }
  std::sort(kept.begin(), kept.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return rule_name(a.rule) < std::string(rule_name(b.rule));
  });
  return kept;
}

std::vector<Finding> lint_paths(const std::vector<fs::path>& paths) {
  std::vector<Finding> findings;
  for (const fs::path& path : paths) {
    FileInput input;
    input.path = path.generic_string();
    input.content = read_file(path);
    const std::string ext = path.extension().string();
    if (ext == ".cpp" || ext == ".cc" || ext == ".cxx") {
      for (const char* header_ext : {".hpp", ".hh", ".h"}) {
        fs::path header = path;
        header.replace_extension(header_ext);
        if (fs::exists(header)) {
          input.sibling_header = read_file(header);
          break;
        }
      }
    }
    std::vector<Finding> file_findings = lint_file(input);
    findings.insert(findings.end(), std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::vector<Finding> lint_tree(const fs::path& root) {
  std::vector<fs::path> paths;
  for (const char* dir : {"src", "tools", "bench"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(base))
      if (entry.is_regular_file() && lintable_extension(entry.path()))
        paths.push_back(entry.path());
  }
  std::sort(paths.begin(), paths.end());
  return lint_paths(paths);
}

std::string format_finding(const Finding& finding) {
  std::ostringstream out;
  out << finding.file << ":" << finding.line << ": [" << rule_name(finding.rule) << "] "
      << finding.message;
  return out.str();
}

}  // namespace psched::lint
