#pragma once
// psched-lint: the project contract checker. A dependency-free token-level
// scanner that machine-checks the invariants every determinism claim in this
// repo rests on (byte-identical parallel sweeps, fork/naive FST byte-equality,
// bit-exact campaign resume). Each contract is a named, individually
// suppressible rule; the full catalog with rationale lives in
// docs/static_analysis.md.
//
// Suppression syntax (reason is mandatory), e.g.:
//   // psched-lint: allow(unordered-iter): order-insensitive count, not output
// On a code line it suppresses that rule on that line; on a line of its own it
// suppresses the rule on the next line carrying code. A suppression without a
// reason, or naming an unknown rule, is itself a finding (bad-suppression).

#include <filesystem>
#include <string>
#include <vector>

namespace psched::lint {

enum class Rule {
  kRawRng,          ///< randomness outside util::Rng (src/util/rng.*)
  kWallClock,       ///< wall-clock reads outside sanctioned files
  kParallelFpAccum, ///< compound assignment inside parallel_for/submit lambdas
  kSchedulerClone,  ///< Scheduler subclass without a clone() override
  kRawFileWrite,    ///< direct file writes outside util::atomic_write_file
  kUnorderedIter,   ///< iterating an unordered container without justification
  kRawFaultEnv,     ///< getenv("PSCHED_FAULT*") outside the fault registry
  kRawTraceEnv,     ///< getenv("PSCHED_TRACE") outside the obs registry
  kBadSuppression,  ///< malformed psched-lint comment (diagnostic, not a contract)
};

/// Stable rule id used in reports and allow(<rule>) comments.
const char* rule_name(Rule rule);

/// Parse an allow(<name>) rule id; returns false for unknown names.
/// kBadSuppression is internal and deliberately not nameable.
bool rule_from_name(const std::string& name, Rule& out);

struct Finding {
  std::string file;  ///< path as given to the linter
  int line = 0;      ///< 1-based
  Rule rule = Rule::kRawRng;
  std::string message;
};

/// One translation unit to scan. `sibling_header` optionally carries the text
/// of the same-stem .hpp so container declarations in the header are visible
/// when linting the .cpp (the unordered-iter rule needs this).
struct FileInput {
  std::string path;
  std::string content;
  std::string sibling_header;  ///< empty = none
};

/// Scan one file; findings are suppression-filtered and sorted by line.
std::vector<Finding> lint_file(const FileInput& input);

/// Read each path (pairing .cpp files with a same-stem header in the same
/// directory when present) and scan it. Unreadable paths throw.
std::vector<Finding> lint_paths(const std::vector<std::filesystem::path>& paths);

/// Scan every C++ source under root/src, root/tools, root/bench.
std::vector<Finding> lint_tree(const std::filesystem::path& root);

/// "file:line: [rule] message" — the one report format, shared by CLI & tests.
std::string format_finding(const Finding& finding);

}  // namespace psched::lint
