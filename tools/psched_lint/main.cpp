// psched-lint CLI. Scans src/, tools/, bench/ (or an explicit file list) for
// violations of the project's determinism/durability contracts and exits
// non-zero on any finding. See docs/static_analysis.md for the rule catalog.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "psched_lint/lint.hpp"

namespace {

void print_usage() {
  std::printf(
      "usage: psched_lint [--root DIR] [--list-rules] [file...]\n"
      "\n"
      "With no files, scans DIR/src, DIR/tools, DIR/bench (DIR defaults to the\n"
      "current directory). Exits 1 when any contract violation is found.\n"
      "Suppress a finding with: // psched-lint: allow(<rule>): <reason>\n");
}

void print_rules() {
  using psched::lint::Rule;
  struct Entry {
    Rule rule;
    const char* summary;
  };
  const Entry entries[] = {
      {Rule::kRawRng, "randomness outside util::Rng (seeded, forkable streams only)"},
      {Rule::kWallClock, "wall-clock reads outside sanctioned files (simulation time only)"},
      {Rule::kParallelFpAccum,
       "compound accumulation in parallel_for/submit lambdas (serial reductions only)"},
      {Rule::kSchedulerClone, "Scheduler subclass missing the clone() override (fork contract)"},
      {Rule::kRawFileWrite,
       "direct file writes outside util::atomic_write_file (durability contract)"},
      {Rule::kUnorderedIter, "unordered-container iteration without a sorted order or a reason"},
      {Rule::kRawFaultEnv,
       "getenv(\"PSCHED_FAULT*\") outside the fault registry (single-parse arming contract)"},
  };
  for (const Entry& entry : entries)
    std::printf("%-18s %s\n", psched::lint::rule_name(entry.rule), entry.summary);
}

}  // namespace

int main(int argc, char** argv) {
  std::filesystem::path root = ".";
  std::vector<std::filesystem::path> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    }
    if (arg == "--list-rules") {
      print_rules();
      return 0;
    }
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "psched_lint: --root needs a directory\n");
        return 2;
      }
      root = argv[++i];
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "psched_lint: unknown option '%s'\n", arg.c_str());
      print_usage();
      return 2;
    }
    files.emplace_back(arg);
  }

  std::vector<psched::lint::Finding> findings;
  try {
    findings = files.empty() ? psched::lint::lint_tree(root) : psched::lint::lint_paths(files);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "%s\n", error.what());
    return 2;
  }

  for (const psched::lint::Finding& finding : findings)
    std::printf("%s\n", psched::lint::format_finding(finding).c_str());
  if (!findings.empty()) {
    std::fprintf(stderr, "psched-lint: %zu finding(s)\n", findings.size());
    return 1;
  }
  std::fprintf(stderr, "psched-lint: clean\n");
  return 0;
}
